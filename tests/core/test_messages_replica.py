"""Tests for the message vocabulary and per-key replica state."""

import pytest

from repro.core.context import ClientContext
from repro.core.messages import HEADER_BYTES, Message, MsgType, VALUE_BYTES
from repro.core.replica import KeyReplica, ReplicaTable, ZERO_VERSION
from repro.sim.engine import Simulator


class TestMessages:
    def test_table3_vocabulary(self):
        names = {t.value for t in MsgType}
        assert names == {"INV", "ACK", "ACK_c", "ACK_p", "VAL", "VAL_c",
                         "VAL_p", "UPD", "INITX", "ENDX", "PERSIST"}

    def test_data_carrying_types(self):
        assert MsgType.INV.carries_data
        assert MsgType.UPD.carries_data
        assert not MsgType.ACK.carries_data

    def test_ack_and_val_classification(self):
        assert MsgType.ACK_C.is_ack and MsgType.ACK_P.is_ack
        assert MsgType.VAL_C.is_val and MsgType.VAL_P.is_val
        assert not MsgType.INV.is_ack

    def test_size_includes_payloads(self):
        bare_ack = Message(MsgType.ACK, src=0, op_id=1)
        assert bare_ack.size_bytes == HEADER_BYTES
        inv = Message(MsgType.INV, src=0, op_id=1, key=5, version=(1, 0),
                      value="x")
        assert inv.size_bytes == HEADER_BYTES + 8 + VALUE_BYTES

    def test_cauhist_adds_bytes(self):
        small = Message(MsgType.UPD, src=0, op_id=1, key=5, version=(1, 0),
                        value="x")
        big = Message(MsgType.UPD, src=0, op_id=1, key=5, version=(1, 0),
                      value="x", cauhist=(((1, (1, 0))), ((2, (2, 0)))))
        assert big.size_bytes > small.size_bytes

    def test_scope_tagging(self):
        message = Message(MsgType.INV, src=0, op_id=1, key=5, scope_id=3)
        assert message.tagged() == "[INV]3"
        plain = Message(MsgType.INV, src=0, op_id=1, key=5)
        assert plain.tagged() == "INV"


class TestKeyReplica:
    @pytest.fixture
    def replica(self):
        return KeyReplica(Simulator(), key=7)

    def test_initial_state(self, replica):
        assert replica.applied_version == ZERO_VERSION
        assert replica.persisted_version == ZERO_VERSION
        assert not replica.transient

    def test_apply_advances(self, replica):
        assert replica.apply((1, 0), "a")
        assert replica.applied_value == "a"
        assert not replica.apply((1, 0), "dup")
        assert replica.applied_value == "a"

    def test_stale_apply_ignored(self, replica):
        replica.apply((5, 0), "new")
        assert not replica.apply((3, 0), "old")
        assert replica.applied_value == "new"

    def test_version_tiebreak_by_node(self, replica):
        replica.apply((1, 0), "from-node-0")
        assert replica.apply((1, 1), "from-node-1")
        assert replica.applied_value == "from-node-1"

    def test_next_version_increments(self, replica):
        v1 = replica.next_version(node_id=2)
        assert v1 == (1, 2)
        replica.apply(v1, "x")
        assert replica.next_version(node_id=2) == (2, 2)

    def test_persisted_tracking(self, replica):
        replica.apply((1, 0), "a")
        assert replica.mark_persisted((1, 0), "a")
        assert replica.persisted_value == "a"
        assert not replica.mark_persisted((1, 0), "a")

    def test_transient_lifecycle(self, replica):
        replica.begin_inv(11)
        replica.begin_inv(12)
        assert replica.transient
        replica.end_inv(11)
        assert replica.transient
        replica.end_inv(12)
        assert not replica.transient

    def test_end_inv_idempotent(self, replica):
        replica.begin_inv(1)
        replica.end_inv(1)
        replica.end_inv(1)  # no error
        assert not replica.transient

    def test_cluster_persisted(self, replica):
        assert replica.mark_cluster_persisted((2, 0))
        assert not replica.mark_cluster_persisted((1, 0))

    def test_condition_wakes_on_apply(self, replica):
        sim = replica.condition.sim
        woken = []

        def waiter():
            yield replica.condition.wait_for(
                lambda: replica.applied_version >= (1, 0))
            woken.append(True)

        sim.process(waiter())
        sim.run()
        assert not woken
        replica.apply((1, 0), "x")
        sim.run()
        assert woken == [True]


class TestReplicaTable:
    def test_lazy_creation(self):
        table = ReplicaTable(Simulator(), node_id=0)
        assert 5 not in table
        replica = table.get(5)
        assert 5 in table
        assert table.get(5) is replica
        assert len(table) == 1


class TestClientContext:
    def test_observe_tracks_max_version(self):
        ctx = ClientContext(client_id=1, node_id=0)
        ctx.observe(5, (3, 0))
        ctx.observe(5, (2, 0))  # older, ignored
        deps = ctx.take_dependencies(9, (1, 1))
        assert (5, (3, 0)) in deps

    def test_zero_version_not_observed(self):
        ctx = ClientContext(1, 0)
        ctx.observe(5, ZERO_VERSION)
        assert ctx.dependency_count == 0

    def test_take_dependencies_resets_to_own_write(self):
        ctx = ClientContext(1, 0)
        ctx.observe(5, (1, 0))
        ctx.take_dependencies(9, (1, 1))
        deps = ctx.take_dependencies(10, (1, 2))
        assert deps == ((9, (1, 1)),)

    def test_scope_lifecycle(self):
        ctx = ClientContext(client_id=2, node_id=0)
        first_scope = ctx.current_scope_id
        ctx.record_scope_write(1, (1, 0))
        ctx.record_scope_write(2, (1, 0))
        scope_id, writes = ctx.close_scope()
        assert scope_id == first_scope
        assert len(writes) == 2
        assert ctx.current_scope_id != first_scope
        assert ctx.scope_writes == []

    def test_scope_ids_unique_across_clients(self):
        a = ClientContext(1, 0)
        b = ClientContext(2, 0)
        assert a.current_scope_id != b.current_scope_id
