"""The trade-off derivation must reproduce the paper's Table 4 exactly.

Each test case is one row of Table 4 (values transcribed from the
paper); the derivation rules in :mod:`repro.core.tradeoffs` must agree
on every column.
"""

import pytest

from repro.core.model import Consistency as C
from repro.core.model import DdpModel, Persistency as P
from repro.core.tradeoffs import TABLE4_MODELS, Level, analyze, analyze_all

H, M, L = Level.HIGH, Level.MEDIUM, Level.LOW

# (consistency, persistency) -> (durability, wr_opt, rd_opt, traffic,
#                                perf, monotonic, non_stale, intuit,
#                                programmability, implementability)
TABLE4 = {
    (C.LINEARIZABLE, P.SYNCHRONOUS):  (H, False, False, M, L, True, True, H, H, H),
    (C.READ_ENFORCED, P.SYNCHRONOUS): (M, True, False, M, M, True, False, M, H, H),
    (C.TRANSACTIONAL, P.SYNCHRONOUS): (H, True, True, H, H, True, True, H, L, L),
    (C.CAUSAL, P.SYNCHRONOUS):        (M, True, True, H, H, True, False, M, H, L),
    (C.EVENTUAL, P.SYNCHRONOUS):      (L, True, True, L, H, False, False, L, H, H),
    (C.LINEARIZABLE, P.READ_ENFORCED): (M, True, False, H, M, True, False, M, H, H),
    (C.CAUSAL, P.READ_ENFORCED):      (M, True, False, H, H, True, False, M, H, L),
    (C.LINEARIZABLE, P.EVENTUAL):     (L, True, True, M, H, False, False, L, H, H),
    (C.LINEARIZABLE, P.SCOPE):        (H, True, True, H, H, False, False, H, L, L),
    (C.TRANSACTIONAL, P.SCOPE):       (H, True, True, H, H, False, False, H, L, L),
}


@pytest.mark.parametrize("pair", list(TABLE4), ids=lambda p: f"{p[0].value}-{p[1].value}")
def test_table4_row(pair):
    expected = TABLE4[pair]
    profile = analyze(DdpModel(*pair))
    assert profile.durability == expected[0], "durability"
    assert profile.write_optimized == expected[1], "write optimized"
    assert profile.read_optimized == expected[2], "read optimized"
    assert profile.traffic == expected[3], "traffic"
    assert profile.performance == expected[4], "performance"
    assert profile.monotonic_reads == expected[5], "monotonic reads"
    assert profile.non_stale_reads == expected[6], "non-stale reads"
    assert profile.intuitiveness == expected[7], "intuitiveness"
    assert profile.programmability == expected[8], "programmability"
    assert profile.implementability == expected[9], "implementability"


class TestTable4Scaffolding:
    def test_table4_model_list_matches_paper_order(self):
        assert TABLE4_MODELS[0] == DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)
        assert TABLE4_MODELS[-1] == DdpModel(C.TRANSACTIONAL, P.SCOPE)
        assert len(TABLE4_MODELS) == 10

    def test_analyze_all_default(self):
        profiles = analyze_all()
        assert [p.model for p in profiles] == TABLE4_MODELS

    def test_row_renders(self):
        row = analyze(TABLE4_MODELS[0]).row()
        assert "dur=^" in row and "monot=yes" in row


class TestDerivationGeneralizes:
    """Sanity rules for the 15 combinations not shown in Table 4."""

    def test_strict_always_high_durability(self):
        for c in C:
            assert analyze(DdpModel(c, P.STRICT)).durability == H

    def test_strict_never_write_optimized(self):
        for c in C:
            assert not analyze(DdpModel(c, P.STRICT)).write_optimized

    def test_eventual_persistency_low_durability(self):
        for c in C:
            assert analyze(DdpModel(c, P.EVENTUAL)).durability == L

    def test_eventual_consistency_never_monotonic(self):
        for p in P:
            assert not analyze(DdpModel(C.EVENTUAL, p)).monotonic_reads

    def test_durability_monotone_in_persistency_strictness(self):
        """For a fixed consistency model, stricter persistency never
        gives *lower* durability (Scope outranks its position because
        completed scopes are fully recoverable)."""
        for c in C:
            strict = analyze(DdpModel(c, P.STRICT)).durability
            eventual = analyze(DdpModel(c, P.EVENTUAL)).durability
            assert strict >= eventual

    def test_performance_never_low_with_weak_consistency(self):
        for p in (P.SYNCHRONOUS, P.READ_ENFORCED, P.SCOPE, P.EVENTUAL):
            assert analyze(DdpModel(C.EVENTUAL, p)).performance == H
