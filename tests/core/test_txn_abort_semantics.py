"""Abort semantics: "if the Xaction fails, none of the updates are
performed" — squashed transactions must leave no trace in the volatile
replicas, including under racy last-writer-wins interleavings."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.core.replica import KeyReplica
from repro.sim.engine import Simulator
from repro.txn.manager import TxnConflict


def make_cluster(persistency=P.SYNCHRONOUS):
    cluster = Cluster(DdpModel(C.TRANSACTIONAL, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None))
    cluster.start()
    return cluster


def run(cluster, generator):
    return cluster.sim.run_until_complete(cluster.sim.process(generator))


class TestAbortRevert:
    def test_aborted_write_reverted_everywhere(self):
        cluster = make_cluster()
        engine = cluster.engines[0]
        setup = ClientContext(0, 0)
        run(cluster, engine.client_begin_txn(setup))
        run(cluster, engine.client_write(setup, 5, "committed"))
        run(cluster, engine.client_end_txn(setup))

        ctx = ClientContext(1, 0)
        run(cluster, engine.client_begin_txn(ctx))
        run(cluster, engine.client_write(ctx, 5, "doomed"))
        cluster.sim.run(until=cluster.sim.now + 5_000)  # INVs propagate
        cluster.txn_table.abort(ctx.txn)
        run(cluster, engine.client_abort_txn(ctx))
        cluster.sim.run(until=cluster.sim.now + 100_000)
        for e in cluster.engines:
            assert e.replicas.get(5).applied_value == "committed"

    def test_commit_clears_undo_state(self):
        cluster = make_cluster()
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run(cluster, engine.client_begin_txn(ctx))
        run(cluster, engine.client_write(ctx, 1, "a"))
        run(cluster, engine.client_end_txn(ctx))
        cluster.sim.run(until=cluster.sim.now + 100_000)
        for e in cluster.engines:
            assert e.replicas.get(1).txn_undo == {}

    def test_conflicting_committer_not_blocked_by_abort(self):
        """The livelock regression: writer A's update is superseded by
        writer B's (later aborted) update; A's commit must not hang
        waiting for its version to be 'applied'."""
        cluster = make_cluster()
        sim = cluster.sim
        e0, e1 = cluster.engines[0], cluster.engines[1]
        ctx_a = ClientContext(0, 0)   # older txn, node 0
        ctx_b = ClientContext(1, 1)   # younger txn, node 1
        run(cluster, e0.client_begin_txn(ctx_a))
        run(cluster, e1.client_begin_txn(ctx_b))
        # B writes key 9 first (gets the higher node-id tiebreak), then
        # A writes the same key: A's access squashes the younger B.
        run(cluster, e1.client_write(ctx_b, 9, "from-b"))
        run(cluster, e0.client_write(ctx_a, 9, "from-a"))
        assert ctx_b.txn.aborted
        run(cluster, e1.client_abort_txn(ctx_b))
        # A must be able to commit despite B's write racing hers.
        run(cluster, e0.client_end_txn(ctx_a))
        cluster.sim.run(until=cluster.sim.now + 200_000)
        finals = {e.replicas.get(9).applied_value for e in cluster.engines}
        assert finals == {"from-a"}

    def test_abort_scope_writes_purged(self):
        """<Transactional, Scope>: a squashed transaction's writes leave
        the client's scope list, so the Persist call cannot hang."""
        cluster = make_cluster(P.SCOPE)
        engine = cluster.engines[0]
        ctx = ClientContext(0, 0)
        run(cluster, engine.client_begin_txn(ctx))
        run(cluster, engine.client_write(ctx, 3, "doomed"))
        cluster.txn_table.abort(ctx.txn)
        run(cluster, engine.client_abort_txn(ctx))
        assert ctx.scope_writes == []
        run(cluster, engine.client_persist_scope(ctx))  # no-op, no hang


class TestAbsorbSuperseded:
    def test_pre_image_absorbs_newer_loser(self):
        replica = KeyReplica(Simulator(), key=1)
        replica.apply((1, 0), "base")
        # Transactional write (3, 1) applies over base.
        replica.record_undo((3, 1))
        replica.apply((3, 1), "txn-write")
        # A concurrent write (2, 0) loses LWW; absorbed into pre-image.
        replica.absorb_superseded((2, 0), "superseded")
        assert replica.revert((3, 1))
        assert replica.applied_version == (2, 0)
        assert replica.applied_value == "superseded"

    def test_absorb_ignores_older_than_pre_image(self):
        replica = KeyReplica(Simulator(), key=1)
        replica.apply((2, 0), "base")
        replica.record_undo((3, 1))
        replica.apply((3, 1), "txn-write")
        replica.absorb_superseded((1, 0), "ancient")
        replica.revert((3, 1))
        assert replica.applied_value == "base"

    def test_revert_skipped_if_overwritten(self):
        replica = KeyReplica(Simulator(), key=1)
        replica.record_undo((1, 0))
        replica.apply((1, 0), "txn-write")
        replica.apply((2, 0), "newer-committed")
        assert not replica.revert((1, 0))
        assert replica.applied_value == "newer-committed"
