"""Tests for the closed-loop client driver."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.workload.ycsb import WORKLOADS


def make_cluster(consistency, persistency, clients=2):
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3,
                                           clients_per_server=clients,
                                           store_type=None),
                      workload=WORKLOADS["A"])
    return cluster


class TestClosedLoop:
    def test_clients_complete_requests(self):
        cluster = make_cluster(C.CAUSAL, P.EVENTUAL)
        cluster.run(duration_ns=30_000)
        assert all(client.completed_requests > 0
                   for client in cluster.clients)

    def test_request_stop_is_graceful(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SYNCHRONOUS)
        cluster.run(duration_ns=30_000)
        for client in cluster.clients:
            client.request_stop()
        cluster.sim.run(until=cluster.sim.now + 300_000)
        for client in cluster.clients:
            assert client.process.triggered     # loop exited
        for engine in cluster.engines:
            for replica in engine.replicas:
                assert not replica.transient

    def test_interrupt_handled_as_shutdown(self):
        cluster = make_cluster(C.CAUSAL, P.EVENTUAL)
        cluster.run(duration_ns=10_000)
        client = cluster.clients[0]
        client.process.interrupt("test shutdown")
        cluster.sim.run(until=cluster.sim.now + 50_000)
        assert client.process.triggered
        assert client.process.ok                # clean return, not a crash

    def test_op_records_attributed_to_client(self):
        cluster = make_cluster(C.EVENTUAL, P.EVENTUAL)
        cluster.run(duration_ns=20_000)
        client_ids = {op.client for op in cluster.metrics.ops}
        assert len(client_ids) == len(cluster.clients)


class TestScopedClients:
    def test_persist_issued_every_scope_length(self):
        cluster = make_cluster(C.LINEARIZABLE, P.SCOPE)
        cluster.run(duration_ns=100_000)
        persists = [op for op in cluster.metrics.ops
                    if op.op_type == "persist"]
        requests = [op for op in cluster.metrics.ops
                    if op.op_type in ("read", "write")]
        assert persists, "no scope Persist calls were issued"
        scope_length = cluster.config.protocol.scope_length
        # One persist per scope_length requests, within slack for
        # scopes still open at the end of the run.
        assert len(persists) >= len(requests) // scope_length * 0.5


class TestTransactionalClients:
    def test_txns_grouped_and_retried(self):
        cluster = make_cluster(C.TRANSACTIONAL, P.SYNCHRONOUS, clients=4)
        summary = cluster.run(duration_ns=150_000, warmup_ns=5_000)
        assert cluster.txn_table.committed > 0
        txn_records = [op for op in cluster.metrics.ops
                       if op.op_type == "txn"]
        assert txn_records
        # Each committed transaction contributed txn_length requests.
        txn_length = cluster.config.protocol.txn_length
        requests = [op for op in cluster.metrics.ops
                    if op.op_type in ("read", "write")]
        assert len(requests) == len(txn_records) * txn_length

    def test_request_latency_spans_retries(self):
        """With conflicts, some requests' recorded latencies include the
        backoff-and-retry time (>> a single attempt)."""
        cluster = Cluster(DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS),
                          config=ClusterConfig(servers=3,
                                               clients_per_server=6,
                                               store_type=None),
                          workload=WORKLOADS["A"].with_overrides(key_space=30))
        cluster.run(duration_ns=200_000, warmup_ns=5_000)
        if cluster.txn_table.conflicts == 0:
            pytest.skip("no conflicts materialized in this run")
        latencies = [op.latency_ns for op in cluster.metrics.ops
                     if op.op_type in ("read", "write")]
        assert max(latencies) > cluster.config.protocol.txn_retry_backoff_ns
