"""Tests for the zipfian / YCSB workload generators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import SeededStream
from repro.workload.ycsb import WORKLOADS, RequestStream, WorkloadSpec
from repro.workload.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
)


class TestZipfian:
    def test_ranks_in_range(self):
        gen = ZipfianGenerator(100, theta=0.99, rng=SeededStream(1))
        for _ in range(2000):
            assert 0 <= gen.next() < 100

    def test_rank_zero_most_popular(self):
        gen = ZipfianGenerator(1000, theta=0.99, rng=SeededStream(2))
        counts = {}
        for _ in range(20_000):
            rank = gen.next()
            counts[rank] = counts.get(rank, 0) + 1
        assert counts[0] == max(counts.values())
        # Zipf: rank 0 should get roughly 1/zeta of the mass.
        zeta = sum(1.0 / (i ** 0.99) for i in range(1, 1001))
        expected = 20_000 / zeta
        assert abs(counts[0] - expected) / expected < 0.15

    def test_skew_monotone_in_theta(self):
        """Higher theta concentrates more mass on the top rank."""
        def top_fraction(theta):
            gen = ZipfianGenerator(1000, theta=theta, rng=SeededStream(3))
            hits = sum(1 for _ in range(10_000) if gen.next() == 0)
            return hits / 10_000

        assert top_fraction(0.99) > top_fraction(0.5)

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(100, theta=0.0)
        with pytest.raises(ValueError):
            ZipfianGenerator(0)

    def test_grow_matches_fresh(self):
        grown = ZipfianGenerator(100, theta=0.9, rng=SeededStream(4))
        grown.grow(200)
        fresh = ZipfianGenerator(200, theta=0.9, rng=SeededStream(4))
        assert grown._zeta_n == pytest.approx(fresh._zeta_n)
        assert grown._eta == pytest.approx(fresh._eta)

    def test_grow_shrink_rejected(self):
        gen = ZipfianGenerator(100)
        with pytest.raises(ValueError):
            gen.grow(50)

    def test_deterministic(self):
        a = ZipfianGenerator(500, rng=SeededStream(9))
        b = ZipfianGenerator(500, rng=SeededStream(9))
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


class TestScrambled:
    def test_keys_in_range(self):
        gen = ScrambledZipfianGenerator(1000, rng=SeededStream(5))
        for _ in range(2000):
            assert 0 <= gen.next() < 1000

    def test_hot_keys_spread_out(self):
        """Scrambling moves the popular keys away from ids 0..k."""
        gen = ScrambledZipfianGenerator(10_000, rng=SeededStream(6))
        counts = {}
        for _ in range(20_000):
            key = gen.next()
            counts[key] = counts.get(key, 0) + 1
        hottest = max(counts, key=counts.get)
        assert hottest > 100  # would be ~0 without scrambling

    def test_fnv_hash_is_stable(self):
        assert fnv1a_64(0) == fnv1a_64(0)
        assert fnv1a_64(1) != fnv1a_64(2)


class TestUniform:
    def test_roughly_uniform(self):
        gen = UniformGenerator(10, rng=SeededStream(7))
        counts = [0] * 10
        for _ in range(10_000):
            counts[gen.next()] += 1
        assert min(counts) > 700


class TestWorkloadSpec:
    def test_paper_workloads_defined(self):
        assert WORKLOADS["A"].read_fraction == 0.50
        assert WORKLOADS["B"].read_fraction == 0.95
        assert WORKLOADS["W"].read_fraction == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", read_fraction=0.5, key_space=0)

    def test_with_overrides(self):
        spec = WORKLOADS["A"].with_overrides(zipf_theta=0.5)
        assert spec.zipf_theta == 0.5
        assert spec.read_fraction == 0.50


class TestRequestStream:
    def test_read_fraction_respected(self):
        stream = RequestStream(WORKLOADS["B"], SeededStream(8))
        ops = [stream.next_request()[0] for _ in range(5000)]
        read_fraction = ops.count("read") / len(ops)
        assert abs(read_fraction - 0.95) < 0.02

    def test_write_values_unique(self):
        stream = RequestStream(WORKLOADS["W"], SeededStream(8))
        values = [value for op, _key, value in
                  (stream.next_request() for _ in range(200))
                  if op == "write"]
        assert len(values) == len(set(values))

    def test_unknown_distribution(self):
        spec = WorkloadSpec(name="x", read_fraction=0.5, distribution="pareto")
        with pytest.raises(ValueError):
            RequestStream(spec, SeededStream(1))

    def test_uniform_distribution_supported(self):
        spec = WorkloadSpec(name="u", read_fraction=0.5,
                            distribution="uniform", key_space=50)
        stream = RequestStream(spec, SeededStream(2))
        keys = {stream.next_request()[1] for _ in range(1000)}
        assert len(keys) > 40


@given(theta=st.floats(min_value=0.1, max_value=0.99),
       n=st.integers(min_value=2, max_value=2000))
@settings(max_examples=30, deadline=None)
def test_zipf_draws_always_valid(theta, n):
    gen = ZipfianGenerator(n, theta=theta, rng=SeededStream(0))
    for _ in range(50):
        key = gen.next()
        assert 0 <= key < n
