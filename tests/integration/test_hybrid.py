"""Tests for hybrid multi-datacenter deployments (paper Section 9)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.hybrid.cluster import HybridCluster
from repro.workload.ycsb import WORKLOADS

LIN_SYNC = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)
CROSS_DC_RTT = 50_000.0


def make_hybrid(model=LIN_SYNC, **kwargs):
    cluster = HybridCluster(model, groups=2, servers_per_group=3,
                            cross_dc_round_trip_ns=CROSS_DC_RTT,
                            config=ClusterConfig(servers=6,
                                                 clients_per_server=0,
                                                 store_type=None),
                            **kwargs)
    cluster.start()
    return cluster


def run_op(cluster, generator):
    sim = cluster.sim
    start = sim.now
    value = sim.run_until_complete(sim.process(generator))
    return value, sim.now - start


class TestHybridSemantics:
    def test_write_latency_independent_of_cross_dc_rtt(self):
        """The strong round spans only the local group, so the write
        completes in local-fabric time despite the 50 us WAN."""
        cluster = make_hybrid()
        ctx = ClientContext(0, 0)
        _, latency = run_op(cluster,
                            cluster.engines[0].client_write(ctx, 7, "v1"))
        assert latency < CROSS_DC_RTT / 2

    def test_local_group_strongly_consistent(self):
        cluster = make_hybrid()
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        for node_id in (0, 1, 2):   # the writer's group
            replica = cluster.engines[node_id].replicas.get(7)
            assert replica.applied_value == "v1"
            assert replica.persisted_value == "v1"

    def test_remote_group_converges_eventually(self):
        cluster = make_hybrid()
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        remote = cluster.engines[3].replicas.get(7)
        assert remote.applied_value is None   # not yet
        cluster.sim.run(until=cluster.sim.now + 3 * CROSS_DC_RTT)
        assert remote.applied_value == "v1"
        assert remote.persisted_value == "v1"  # Synchronous at apply

    def test_remote_reads_never_stall(self):
        cluster = make_hybrid()
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        value, latency = run_op(
            cluster, cluster.engines[3].client_read(ClientContext(1, 3), 7))
        assert value is None          # stale, but immediate
        assert latency < 5_000

    def test_concurrent_cross_dc_writers_converge(self):
        cluster = make_hybrid()
        run_op(cluster, cluster.engines[0].client_write(
            ClientContext(0, 0), 7, "from-dc0"))
        run_op(cluster, cluster.engines[3].client_write(
            ClientContext(1, 3), 7, "from-dc1"))
        cluster.sim.run(until=cluster.sim.now + 5 * CROSS_DC_RTT)
        finals = {e.replicas.get(7).applied_value for e in cluster.engines}
        assert len(finals) == 1

    def test_causal_local_model_supported(self):
        cluster = make_hybrid(model=DdpModel(C.CAUSAL, P.SYNCHRONOUS))
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        cluster.sim.run(until=cluster.sim.now + 3 * CROSS_DC_RTT)
        for engine in cluster.engines:
            assert engine.replicas.get(7).applied_value == "v1"


class TestHybridWorkload:
    def test_full_workload_runs_and_beats_global_strong(self):
        """A hybrid deployment over a slow WAN vastly outperforms running
        the same strong model across all six nodes."""
        config = ClusterConfig(servers=6, clients_per_server=3)
        hybrid = HybridCluster(LIN_SYNC, groups=2, servers_per_group=3,
                               cross_dc_round_trip_ns=CROSS_DC_RTT,
                               config=config, workload=WORKLOADS["A"])
        hybrid_summary = hybrid.run(duration_ns=60_000, warmup_ns=6_000)

        def wan_one_way(src, dst):
            return (500.0 if (src // 3) == (dst // 3)
                    else CROSS_DC_RTT / 2)

        global_cluster = Cluster(LIN_SYNC, config=config,
                                 workload=WORKLOADS["A"])
        global_cluster.network.one_way_fn = wan_one_way
        global_summary = global_cluster.run(duration_ns=60_000,
                                            warmup_ns=6_000)
        assert hybrid_summary.requests > 0
        assert (hybrid_summary.throughput_ops_per_s
                > 2 * global_summary.throughput_ops_per_s)
