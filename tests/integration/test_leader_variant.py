"""Tests for the leader-based protocol variant."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.variants.leader import LeaderCluster
from repro.workload.ycsb import WORKLOADS

LIN_SYNC = DdpModel(C.LINEARIZABLE, P.SYNCHRONOUS)
SMALL = ClusterConfig(servers=3, clients_per_server=0, store_type=None)


def run_op(cluster, generator):
    sim = cluster.sim
    start = sim.now
    sim.run_until_complete(sim.process(generator))
    return sim.now - start


class TestLeaderSemantics:
    def test_non_leader_writes_forwarded(self):
        cluster = LeaderCluster(LIN_SYNC, config=SMALL)
        cluster.start()
        ctx = ClientContext(0, 1)
        run_op(cluster, cluster.engines[1].client_write(ctx, 7, "v1"))
        assert cluster.engines[1].forwarded_writes == 1
        assert cluster.metrics.messages_by_type.get("FWD") == 1
        for engine in cluster.engines:
            assert engine.replicas.get(7).applied_value == "v1"

    def test_leader_writes_not_forwarded(self):
        cluster = LeaderCluster(LIN_SYNC, config=SMALL)
        cluster.start()
        ctx = ClientContext(0, 0)
        run_op(cluster, cluster.engines[0].client_write(ctx, 7, "v1"))
        assert cluster.engines[0].forwarded_writes == 0
        assert "FWD" not in cluster.metrics.messages_by_type

    def test_forwarding_adds_a_round_trip(self):
        leaderless = Cluster(LIN_SYNC, config=SMALL)
        leaderless.start()
        direct = run_op(leaderless, leaderless.engines[1].client_write(
            ClientContext(0, 1), 7, "v"))

        leader_cluster = LeaderCluster(LIN_SYNC, config=SMALL)
        leader_cluster.start()
        forwarded = run_op(leader_cluster,
                           leader_cluster.engines[1].client_write(
                               ClientContext(0, 1), 7, "v"))
        rtt = SMALL.network.round_trip_ns
        assert forwarded >= direct + rtt * 0.9

    def test_reads_stay_local(self):
        cluster = LeaderCluster(LIN_SYNC, config=SMALL)
        cluster.start()
        run_op(cluster, cluster.engines[0].client_write(
            ClientContext(0, 0), 7, "v1"))
        latency = run_op(cluster, cluster.engines[2].client_read(
            ClientContext(1, 2), 7))
        assert latency < SMALL.network.round_trip_ns


class TestLeaderWorkload:
    def test_leader_throttles_throughput(self):
        """Funneling writes through one node's workers costs throughput
        relative to the leaderless design (the paper's motivation)."""
        config = ClusterConfig(servers=5, clients_per_server=20)
        leaderless = Cluster(LIN_SYNC, config=config,
                             workload=WORKLOADS["A"]).run(60_000, 6_000)
        led = LeaderCluster(LIN_SYNC, config=config,
                            workload=WORKLOADS["A"]).run(60_000, 6_000)
        assert led.throughput_ops_per_s < leaderless.throughput_ops_per_s

    def test_leader_reduces_read_conflicts_at_low_client_count(self):
        """The Ganesan discrepancy (Section 8.1.2): with a designated
        leader and 10 clients, far fewer reads race unpersisted writes
        than in the leaderless 100-client setup."""
        model = DdpModel(C.READ_ENFORCED, P.READ_ENFORCED)

        def conflict_fraction(summary):
            return (summary.reads_blocked_by_unpersisted
                    / max(summary.requests * 0.5, 1))

        leaderless_100 = Cluster(
            model, config=ClusterConfig(clients_per_server=20),
            workload=WORKLOADS["A"]).run(60_000, 6_000)
        leader_10 = LeaderCluster(
            model, config=ClusterConfig(clients_per_server=2),
            workload=WORKLOADS["A"]).run(60_000, 6_000)
        assert conflict_fraction(leader_10) < conflict_fraction(leaderless_100) / 2
