"""Integration: every one of the 25 DDP models runs a live workload and
honors cross-cutting protocol invariants.

These runs use a small cluster (3 servers, 4 clients each) and a short
horizon so the full matrix stays fast; the heavier calibrated runs live
in benchmarks/.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P, all_ddp_models
from repro.core.policies import PersistMode
from repro.workload.ycsb import WORKLOADS

SMALL = ClusterConfig(servers=3, clients_per_server=4, store_type=None)
DURATION = 40_000.0
QUIESCE = 400_000.0


def run_model(model, workload=None, config=SMALL):
    cluster = Cluster(model, config=config,
                      workload=workload or WORKLOADS["A"])
    summary = cluster.run(duration_ns=DURATION, warmup_ns=4_000)
    return cluster, summary


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_model_makes_progress(model):
    cluster, summary = run_model(model)
    assert summary.requests > 0, f"{model} completed no requests"
    assert summary.throughput_ops_per_s > 0


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_replicas_converge_after_quiesce(model):
    """Once clients stop and the system drains, all volatile replicas
    agree on every key (eventual convergence, which every model in the
    matrix promises at minimum)."""
    cluster, _ = run_model(model)
    for client in cluster.clients:
        client.request_stop()
    cluster.sim.run(until=cluster.sim.now + QUIESCE)
    keys = set()
    for engine in cluster.engines:
        keys.update(engine.replicas.keys())
    mismatches = []
    for key in keys:
        versions = {engine.replicas.get(key).applied_version
                    for engine in cluster.engines}
        if len(versions) != 1:
            mismatches.append((key, versions))
    assert not mismatches, f"{model}: diverged keys {mismatches[:5]}"


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_no_dangling_transients_after_quiesce(model):
    cluster, _ = run_model(model)
    for client in cluster.clients:
        client.request_stop()
    cluster.sim.run(until=cluster.sim.now + QUIESCE)
    if model.consistency is C.TRANSACTIONAL:
        # A transaction that was mid-flight when its client was killed
        # legitimately leaves transient markers; skip the check.
        return
    for engine in cluster.engines:
        for replica in engine.replicas:
            assert not replica.transient, (
                f"{model}: key {replica.key} stuck transient at node "
                f"{engine.node_id}")


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_persisted_never_ahead_of_applied_except_strict(model):
    """Durability can only lead visibility under Strict persistency
    (which may persist before the volatile replica updates), or when a
    squashed transaction's write was reverted after an eager/lazy
    background persist already made it durable (NVM cannot un-persist)."""
    cluster, _ = run_model(model)
    if model.persistency is P.STRICT:
        return
    if (model.consistency is C.TRANSACTIONAL
            and model.persistency in (P.READ_ENFORCED, P.EVENTUAL)):
        return
    for engine in cluster.engines:
        for replica in engine.replicas:
            assert replica.persisted_version <= replica.applied_version, (
                f"{model}: node {engine.node_id} key {replica.key}")


@pytest.mark.parametrize("persistency", list(P), ids=lambda p: p.value)
def test_synchronous_like_models_persist_during_run(persistency):
    model = DdpModel(C.LINEARIZABLE, persistency)
    cluster, summary = run_model(model)
    if persistency in (P.STRICT, P.SYNCHRONOUS, P.READ_ENFORCED):
        assert summary.persists > 0
    # Scope/Eventual persist later or lazily; no assertion either way.


def test_transactional_conflicts_detected_under_contention():
    model = DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS)
    config = ClusterConfig(servers=3, clients_per_server=6, store_type=None)
    hot = WORKLOADS["A"].with_overrides(key_space=50)
    cluster, summary = run_model(model, workload=hot, config=config)
    assert summary.txn_commits > 0
    assert summary.txn_conflicts > 0


def test_causal_buffering_higher_under_synchronous_than_eventual():
    """Paper Section 8.1.2: Causal+Synchronous needs far more buffered
    writes than Causal+Eventual."""
    sync_cluster, sync_summary = run_model(DdpModel(C.CAUSAL, P.SYNCHRONOUS))
    evt_cluster, evt_summary = run_model(DdpModel(C.CAUSAL, P.EVENTUAL))
    assert sync_summary.causal_buffer_peak >= evt_summary.causal_buffer_peak


def test_scope_models_persist_and_log_scope_entries():
    model = DdpModel(C.LINEARIZABLE, P.SCOPE)
    cluster, summary = run_model(model)
    assert summary.persists > 0
    assert cluster.nvm_log.total_records > 0
