"""Tests for transaction bookkeeping and conflict detection."""

import pytest

from repro.txn.manager import Txn, TxnConflict, TxnTable


@pytest.fixture
def table():
    return TxnTable()


class TestLifecycle:
    def test_begin_assigns_increasing_ids(self, table):
        t1 = table.begin(node=0, client=0)
        t2 = table.begin(node=1, client=1)
        assert t2.txn_id > t1.txn_id
        assert table.active_count == 2

    def test_commit_removes(self, table):
        txn = table.begin(0, 0)
        table.commit(txn)
        assert table.active_count == 0
        assert table.committed == 1

    def test_abort_marks_and_removes(self, table):
        txn = table.begin(0, 0)
        table.abort(txn)
        assert txn.aborted
        assert table.active_count == 0
        assert table.aborted == 1


class TestConflicts:
    def test_no_conflict_on_disjoint_keys(self, table):
        t1 = table.begin(0, 0)
        t2 = table.begin(1, 1)
        table.check_access(t1, 1, is_write=True)
        table.check_access(t2, 2, is_write=True)
        assert table.conflicts == 0

    def test_read_read_never_conflicts(self, table):
        t1 = table.begin(0, 0)
        t2 = table.begin(1, 1)
        table.check_access(t1, 5, is_write=False)
        table.check_access(t2, 5, is_write=False)
        assert table.conflicts == 0

    def test_write_write_conflict_squashes_younger(self, table):
        old = table.begin(0, 0)
        young = table.begin(1, 1)
        table.check_access(old, 7, is_write=True)
        with pytest.raises(TxnConflict):
            table.check_access(young, 7, is_write=True)
        assert young.aborted
        assert not old.aborted
        assert table.conflicts == 1

    def test_older_txn_wins_and_victim_discovers_later(self, table):
        young_first = table.begin(0, 0)
        older_is_actually_younger = table.begin(1, 1)
        # The *older id* txn accesses second: the younger is squashed
        # in-place and discovers it at its next access.
        table.check_access(older_is_actually_younger, 3, is_write=True)
        table.check_access(young_first, 3, is_write=True)  # older id wins
        assert older_is_actually_younger.aborted
        with pytest.raises(TxnConflict):
            table.check_access(older_is_actually_younger, 9, is_write=False)

    def test_read_of_remote_write_set_conflicts(self, table):
        writer = table.begin(0, 0)
        reader = table.begin(1, 1)
        table.check_access(writer, 4, is_write=True)
        with pytest.raises(TxnConflict):
            table.check_access(reader, 4, is_write=False)

    def test_write_vs_remote_read_set_invisible(self, table):
        """Read sets are only checked for same-node transactions
        (reads are never broadcast in the protocol)."""
        reader = table.begin(node=0, client=0)
        writer = table.begin(node=1, client=1)
        table.check_access(reader, 4, is_write=False)
        table.check_access(writer, 4, is_write=True)  # no conflict
        assert table.conflicts == 0

    def test_write_vs_local_read_set_conflicts(self, table):
        reader = table.begin(node=0, client=0)
        writer = table.begin(node=0, client=1)
        table.check_access(reader, 4, is_write=False)
        with pytest.raises(TxnConflict):
            table.check_access(writer, 4, is_write=True)

    def test_check_still_alive(self, table):
        txn = table.begin(0, 0)
        table.abort(txn)
        with pytest.raises(TxnConflict):
            table.check_still_alive(txn)

    def test_access_records_sets(self, table):
        txn = table.begin(0, 0)
        table.check_access(txn, 1, is_write=False)
        table.check_access(txn, 2, is_write=True)
        assert txn.read_set == {1}
        assert txn.write_set == {2}

    def test_own_keys_never_self_conflict(self, table):
        txn = table.begin(0, 0)
        table.check_access(txn, 1, is_write=True)
        table.check_access(txn, 1, is_write=False)
        table.check_access(txn, 1, is_write=True)
        assert table.conflicts == 0
