"""Tests for the Visibility/Durability Point measurement."""

import math

import pytest

from repro.analysis.points import PointsTracker
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P


class TestTrackerUnit:
    def test_vp_dp_lags_computed(self):
        tracker = PointsTracker(num_nodes=2)
        tracker.emit(0.0, "write_issue", node=0, key=1, version=(1, 0))
        tracker.emit(10.0, "apply", node=0, key=1, version=(1, 0))
        tracker.emit(50.0, "apply", node=1, key=1, version=(1, 0))
        tracker.emit(100.0, "persist", node=0, key=1, version=(1, 0))
        tracker.emit(400.0, "persist", node=1, key=1, version=(1, 0))
        summary = tracker.summarize()
        assert summary.writes_tracked == 1
        assert summary.mean_visibility_lag_ns == pytest.approx(50.0)
        assert summary.mean_durability_lag_ns == pytest.approx(400.0)

    def test_partial_propagation_not_counted_complete(self):
        tracker = PointsTracker(num_nodes=3)
        tracker.emit(0.0, "write_issue", node=0, key=1, version=(1, 0))
        tracker.emit(5.0, "apply", node=0, key=1, version=(1, 0))
        summary = tracker.summarize()
        assert summary.fully_visible == 0
        assert math.isnan(summary.mean_visibility_lag_ns)

    def test_unknown_writes_ignored(self):
        tracker = PointsTracker(num_nodes=1)
        tracker.emit(5.0, "apply", node=0, key=1, version=(1, 0))
        assert tracker.summarize().writes_tracked == 0

    def test_first_event_wins(self):
        tracker = PointsTracker(num_nodes=1)
        tracker.emit(0.0, "write_issue", node=0, key=1, version=(1, 0))
        tracker.emit(10.0, "apply", node=0, key=1, version=(1, 0))
        tracker.emit(20.0, "apply", node=0, key=1, version=(1, 0))
        assert tracker.summarize().mean_visibility_lag_ns == pytest.approx(10.0)

    def test_irrelevant_categories_ignored(self):
        tracker = PointsTracker(num_nodes=1)
        tracker.emit(0.0, "send", node=0, key=1)
        assert tracker.summarize().writes_tracked == 0


def drive_writes(consistency, persistency, writes=10):
    tracker = PointsTracker(num_nodes=3)
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None),
                      tracer=tracker)
    cluster.start()
    engine = cluster.engines[0]
    ctx = ClientContext(0, 0)
    for i in range(writes):
        cluster.sim.run_until_complete(
            cluster.sim.process(engine.client_write(ctx, i, f"v{i}")))
    cluster.sim.run(until=cluster.sim.now + 300_000)
    return tracker.summarize()


class TestEndToEnd:
    def test_lin_sync_dp_is_vp_plus_one_persist(self):
        """<Linearizable, Synchronous>: every write fully visible AND
        durable; the Durability Point trails the Visibility Point by
        exactly one NVM persist (DP at VP, Table 2)."""
        summary = drive_writes(C.LINEARIZABLE, P.SYNCHRONOUS)
        assert summary.visibility_completion_fraction == 1.0
        assert summary.durability_completion_fraction == 1.0
        gap = summary.mean_durability_lag_ns - summary.mean_visibility_lag_ns
        assert 300.0 <= gap <= 700.0  # ~ one 400 ns NVM write

    def test_scope_durability_lags_visibility(self):
        """<Linearizable, Scope>: writes become visible long before the
        scope's Persist call makes them durable (no Persist issued here,
        so durability never completes)."""
        summary = drive_writes(C.LINEARIZABLE, P.SCOPE)
        assert summary.visibility_completion_fraction == 1.0
        assert summary.durability_completion_fraction == 0.0

    def test_eventual_persistency_dp_later_than_vp(self):
        summary = drive_writes(C.CAUSAL, P.EVENTUAL)
        assert summary.visibility_completion_fraction == 1.0
        assert summary.durability_completion_fraction == 1.0
        assert (summary.mean_durability_lag_ns
                > summary.mean_visibility_lag_ns)

    def test_strict_dp_orders_of_magnitude_before_eventual(self):
        """Strict makes updates durable within the write round; Eventual
        persistency defers durability by the lazy delay."""
        strict = drive_writes(C.EVENTUAL, P.STRICT)
        lazy = drive_writes(C.EVENTUAL, P.EVENTUAL)
        assert strict.durability_completion_fraction == 1.0
        assert (strict.mean_durability_lag_ns * 5
                < lazy.mean_durability_lag_ns)
