"""Tests for percentile edge cases and the windowed time series."""

import math

import pytest

from repro.analysis.metrics import (
    Metrics,
    OpRecord,
    _percentile,
    windowed_op_series,
)
from repro.analysis.points import PointsTracker


def _op(op_type, end_ns, node=0, latency=10.0, client=0, key=1):
    return OpRecord(op_type, node=node, client=client, key=key,
                    start_ns=end_ns - latency, end_ns=end_ns)


class TestPercentile:
    def test_empty_list_is_nan(self):
        assert math.isnan(_percentile([], 0.5))
        assert math.isnan(_percentile([], 0.0))
        assert math.isnan(_percentile([], 1.0))

    def test_zero_fraction_is_minimum(self):
        assert _percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert _percentile([5.0], 0.0) == 5.0

    def test_negative_fraction_clamps_to_minimum(self):
        assert _percentile([1.0, 2.0, 3.0], -0.5) == 1.0

    def test_full_fraction_is_maximum(self):
        assert _percentile([1.0, 2.0, 3.0], 1.0) == 3.0
        assert _percentile([1.0, 2.0, 3.0], 1.5) == 3.0

    def test_nearest_rank_interior(self):
        values = [float(v) for v in range(1, 11)]  # 1..10
        assert _percentile(values, 0.50) == 5.0
        assert _percentile(values, 0.90) == 9.0
        assert _percentile(values, 0.99) == 10.0

    def test_single_element(self):
        assert _percentile([42.0], 0.99) == 42.0


class TestWindowedOpSeries:
    def test_buckets_by_completion_time(self):
        ops = [_op("read", 50.0), _op("write", 150.0), _op("read", 180.0)]
        series = windowed_op_series(ops, window_ns=100.0)
        assert len(series) == 2
        assert series[0].ops == 1
        assert series[1].ops == 2
        assert series[0].throughput_ops_per_s == pytest.approx(1 / 100e-9)

    def test_empty_windows_are_emitted_for_alignment(self):
        ops = [_op("read", 50.0), _op("read", 350.0)]
        series = windowed_op_series(ops, window_ns=100.0)
        assert [w.ops for w in series] == [1, 0, 0, 1]
        assert math.isnan(series[1].p99_ns)
        assert series[1].throughput_ops_per_s == 0.0

    def test_op_type_filter(self):
        ops = [_op("read", 50.0), _op("begin_txn", 60.0)]
        series = windowed_op_series(ops, window_ns=100.0)
        assert series[0].ops == 1

    def test_explicit_end_pads_and_truncates(self):
        ops = [_op("read", 50.0), _op("read", 550.0)]
        series = windowed_op_series(ops, window_ns=100.0, end_ns=300.0)
        assert len(series) == 3
        assert [w.ops for w in series] == [1, 0, 0]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            windowed_op_series([], window_ns=0.0)

    def test_no_ops_yields_empty_series(self):
        assert windowed_op_series([], window_ns=100.0) == []

    def test_no_ops_with_explicit_end_pads_empty_windows(self):
        series = windowed_op_series([], window_ns=100.0, end_ns=250.0)
        assert [w.ops for w in series] == [0, 0, 0]
        assert all(math.isnan(w.p99_ns) for w in series)

    def test_single_op(self):
        (window,) = windowed_op_series([_op("read", 50.0, latency=10.0)],
                                       window_ns=100.0)
        assert window.ops == 1
        assert (window.start_ns, window.end_ns) == (0.0, 100.0)
        assert window.mean_ns == window.p50_ns == window.p99_ns == 10.0

    def test_boundary_op_lands_in_the_window_starting_there(self):
        """An op completing exactly at a window boundary belongs to the
        window that *starts* there (half-open [start, end) windows) and
        must not vanish from the series."""
        series = windowed_op_series([_op("read", 100.0)], window_ns=100.0)
        assert [w.ops for w in series] == [0, 1]
        assert series[1].start_ns == 100.0

    def test_boundary_op_survives_alongside_interior_ops(self):
        ops = [_op("read", 50.0), _op("read", 200.0), _op("read", 120.0)]
        series = windowed_op_series(ops, window_ns=100.0)
        assert [w.ops for w in series] == [1, 1, 1]
        assert sum(w.ops for w in series) == len(ops)

    def test_latency_percentiles_per_window(self):
        ops = [_op("read", 90.0, latency=lat)
               for lat in (10.0, 20.0, 30.0, 40.0)]
        (window,) = windowed_op_series(ops, window_ns=100.0)
        assert window.mean_ns == 25.0
        assert window.p50_ns == 20.0
        assert window.p99_ns == 40.0


class TestMetricsSeries:
    def test_op_series_by_node_aligned(self):
        metrics = Metrics()
        metrics.record_op(_op("read", 50.0, node=0))
        metrics.record_op(_op("read", 250.0, node=1))
        by_node = metrics.op_series_by_node(100.0, end_ns=300.0)
        assert set(by_node) == {0, 1}
        assert len(by_node[0]) == len(by_node[1]) == 3
        assert [w.ops for w in by_node[0]] == [1, 0, 0]
        assert [w.ops for w in by_node[1]] == [0, 0, 1]

    def test_message_windows_require_configuration(self):
        metrics = Metrics()  # no window_ns
        metrics.record_message("INV", 64, time_ns=50.0)
        assert metrics.message_window_series() == {}
        assert metrics.messages_by_type == {"INV": 1}

    def test_message_windows_bucket_by_time(self):
        metrics = Metrics(window_ns=100.0)
        metrics.record_message("INV", 64, time_ns=10.0)
        metrics.record_message("INV", 64, time_ns=210.0)
        metrics.record_message("ACK", 16, time_ns=220.0)
        metrics.record_message("VAL", 80)  # no timestamp: totals only
        series = metrics.message_window_series()
        assert series == {"ACK": [0, 0, 1], "INV": [1, 0, 1]}
        assert metrics.messages_by_type["VAL"] == 1


class TestPointsWindowLags:
    def test_lags_bucketed_by_issue_window(self):
        points = PointsTracker(2)
        points.emit(50.0, "write_issue", node=0, key=1, version=(1, 0))
        points.emit(80.0, "apply", node=1, key=1, version=(1, 0))
        points.emit(170.0, "persist", node=1, key=1, version=(1, 0))
        points.emit(250.0, "write_issue", node=0, key=2, version=(2, 0))
        points.emit(310.0, "apply", node=1, key=2, version=(2, 0))
        series = points.window_lags(100.0)
        rows = series[1]
        assert len(rows) == 3  # aligned to the last issue window
        assert rows[0]["vp_samples"] == 1
        assert rows[0]["vp_mean_ns"] == 30.0
        assert rows[0]["dp_mean_ns"] == 120.0  # persists keyed by issue
        assert rows[1]["vp_samples"] == 0
        assert math.isnan(rows[1]["vp_mean_ns"])
        assert rows[2]["vp_mean_ns"] == 60.0
        assert rows[2]["dp_samples"] == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PointsTracker(1).window_lags(-1.0)
