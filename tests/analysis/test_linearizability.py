"""Tests for the linearizability checker, including a brute-force cross
check on random histories (property-based)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.linearizability import HistoryOp, is_linearizable


def read(value, invoke, respond):
    return HistoryOp("read", value, invoke, respond)


def write(value, invoke, respond):
    return HistoryOp("write", value, invoke, respond)


class TestBasics:
    def test_empty_history(self):
        assert is_linearizable([])

    def test_sequential_write_read(self):
        history = [write(1, 0, 1), read(1, 2, 3)]
        assert is_linearizable(history)

    def test_read_of_never_written_value(self):
        history = [write(1, 0, 1), read(2, 2, 3)]
        assert not is_linearizable(history)

    def test_stale_read_after_write_completes(self):
        """A read that starts after a write responded must see it (or a
        later write)."""
        history = [write(1, 0, 1), read(None, 2, 3)]
        assert not is_linearizable(history)

    def test_concurrent_read_may_see_either(self):
        # Read overlaps the write: old or new value both linearizable.
        assert is_linearizable([write(1, 0, 10), read(None, 1, 2)],
                               initial_value=None)
        assert is_linearizable([write(1, 0, 10), read(1, 1, 2)])

    def test_two_reads_cannot_swap_order(self):
        """Monotonicity: read(2) then read(1) with writes 1 then 2 done
        sequentially is not linearizable."""
        history = [
            write(1, 0, 1),
            write(2, 2, 3),
            read(2, 4, 5),
            read(1, 6, 7),
        ]
        assert not is_linearizable(history)

    def test_concurrent_writes_allow_either_winner(self):
        history = [write(1, 0, 10), write(2, 0, 10), read(1, 20, 21)]
        assert is_linearizable(history)
        history2 = [write(1, 0, 10), write(2, 0, 10), read(2, 20, 21)]
        assert is_linearizable(history2)

    def test_initial_value(self):
        assert is_linearizable([read(0, 0, 1)], initial_value=0)
        assert not is_linearizable([read(0, 0, 1)], initial_value=None)


def brute_force_linearizable(history, initial_value=None):
    """Check all permutations (reference implementation)."""
    n = len(history)
    indices = list(range(n))
    for perm in itertools.permutations(indices):
        # Real-time order respected?
        position = {op_index: slot for slot, op_index in enumerate(perm)}
        ok = True
        for i in range(n):
            for j in range(n):
                if i != j and history[i].respond < history[j].invoke:
                    if position[i] > position[j]:
                        ok = False
                        break
            if not ok:
                break
        if not ok:
            continue
        value = initial_value
        legal = True
        for op_index in perm:
            op = history[op_index]
            if op.op_type == "write":
                value = op.value
            elif op.value != value:
                legal = False
                break
        if legal:
            return True
    return False


@st.composite
def small_histories(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    ops = []
    for _ in range(n):
        invoke = draw(st.integers(min_value=0, max_value=20))
        duration = draw(st.integers(min_value=1, max_value=10))
        if draw(st.booleans()):
            ops.append(write(draw(st.integers(0, 2)), invoke,
                             invoke + duration))
        else:
            ops.append(read(draw(st.one_of(st.none(), st.integers(0, 2))),
                            invoke, invoke + duration))
    return ops


@given(history=small_histories())
@settings(max_examples=150, deadline=None)
def test_checker_matches_brute_force(history):
    assert is_linearizable(history) == brute_force_linearizable(history)
