"""Staleness measurement and live session-guarantee validation.

Table 4's programmer-intuition column says which models provide
monotonic reads.  Here we *validate it empirically*: live workload runs
with per-client read logs are checked with the monotonic-read checker,
and the VersionBoard quantifies how stale reads get per model.
"""

import pytest

from repro.analysis.staleness import VersionBoard
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.core.tradeoffs import analyze
from repro.recovery.checker import check_monotonic_reads
from repro.workload.client import Client
from repro.workload.ycsb import WORKLOADS, RequestStream


class TestVersionBoard:
    def test_fresh_read_scores_zero(self):
        board = VersionBoard()
        board.note_write(1, (3, 0))
        assert board.score_read(1, (3, 0)) == 0

    def test_stale_read_counts_versions_behind(self):
        board = VersionBoard()
        board.note_write(1, (5, 0))
        assert board.score_read(1, (2, 0)) == 3

    def test_read_of_unwritten_key(self):
        board = VersionBoard()
        assert board.score_read(9, (0, -1)) == 0

    def test_summary_statistics(self):
        board = VersionBoard()
        board.note_write(1, (4, 0))
        for version in [(4, 0), (2, 0), (4, 0), (1, 0)]:
            board.score_read(1, version)
        summary = board.summarize()
        assert summary.reads_scored == 4
        assert summary.stale_reads == 2
        assert summary.stale_fraction == pytest.approx(0.5)
        assert summary.max_versions_behind == 3

    def test_latest_tracks_max(self):
        board = VersionBoard()
        board.note_write(1, (2, 0))
        board.note_write(1, (1, 0))
        assert board.latest(1) == (2, 0)


def run_with_recording(consistency, persistency, duration_ns=60_000):
    board = VersionBoard()
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=4,
                                           store_type=None),
                      version_board=board)
    # Build recording clients by hand (Cluster's default ones don't log).
    for client_id in range(12):
        node = cluster.nodes[client_id % 3]
        stream = RequestStream(WORKLOADS["A"],
                               cluster.rng.fork(f"rc{client_id}"))
        cluster.clients.append(Client(cluster.sim, client_id, node.engine,
                                      stream, cluster.metrics,
                                      record_reads=True))
    cluster.run(duration_ns=duration_ns, warmup_ns=duration_ns / 10)
    return cluster, board


class TestLiveSessionGuarantees:
    @pytest.mark.parametrize("consistency,persistency", [
        (C.LINEARIZABLE, P.SYNCHRONOUS),
        (C.LINEARIZABLE, P.READ_ENFORCED),
        (C.READ_ENFORCED, P.SYNCHRONOUS),
        (C.CAUSAL, P.SYNCHRONOUS),
        (C.CAUSAL, P.READ_ENFORCED),
    ])
    def test_monotonic_models_never_regress(self, consistency, persistency):
        """Every model Table 4 marks monotonic passes the live check."""
        assert analyze(DdpModel(consistency, persistency)).monotonic_reads
        cluster, _board = run_with_recording(consistency, persistency)
        for client in cluster.clients:
            result = check_monotonic_reads(client.read_observations)
            assert result.ok, (consistency, persistency, result.violations)

    def test_linearizable_reads_never_stale(self):
        _cluster, board = run_with_recording(C.LINEARIZABLE, P.SYNCHRONOUS)
        summary = board.summarize()
        assert summary.reads_scored > 0
        # Lin reads may trail a *concurrent* in-flight write by design,
        # but never a completed one; staleness stays at the race margin.
        assert summary.mean_versions_behind < 0.5

    def test_eventual_shows_real_staleness(self):
        _cluster, board = run_with_recording(C.EVENTUAL, P.EVENTUAL)
        summary = board.summarize()
        assert summary.stale_reads > 0

    def test_causal_sync_staleness_from_persist_lag(self):
        """<Causal, Synchronous> reads return the persisted version, so
        they lag whenever the NVM backlog grows — strictly more stale
        than <Causal, Eventual> reads, which return the applied one."""
        _c1, sync_board = run_with_recording(C.CAUSAL, P.SYNCHRONOUS)
        _c2, evt_board = run_with_recording(C.CAUSAL, P.EVENTUAL)
        assert (sync_board.summarize().mean_versions_behind
                >= evt_board.summarize().mean_versions_behind)
