"""Critical-path waterfalls: the conservation invariant and rollups.

The central property: for every completed journey, the five bucket
values sum *exactly* to the end-to-end VP / DP latency — for every one
of the 25 DDP models, since each consistency x persistency pair walks a
different mix of code paths (stalls, lazy persists, causal buffering,
scopes, ENDX rounds, write combining).
"""

import math

import pytest

from repro.analysis.waterfall import (
    BUCKETS,
    aggregate_journeys,
    decompose,
    format_waterfall,
    waterfall_json,
)
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import all_ddp_models
from repro.obs import JourneyTracker, UpdateJourney
from repro.workload.ycsb import WORKLOADS

SERVERS = 3


def run_with_journeys(model, duration_ns=40_000.0):
    tracker = JourneyTracker(SERVERS)
    config = ClusterConfig(servers=SERVERS, clients_per_server=3)
    cluster = Cluster(model, config=config, workload=WORKLOADS["A"],
                      tracer=tracker)
    cluster.run(duration_ns, warmup_ns=4_000.0)
    return tracker


def paths_of(journey, breakdown):
    for point in ("vp", "dp"):
        path = getattr(breakdown, point)
        latency = (journey.vp_ns(SERVERS) if point == "vp"
                   else journey.dp_ns(SERVERS))
        if path is not None:
            yield point, path, latency


class TestConservationInvariant:
    @pytest.mark.parametrize("model", all_ddp_models(), ids=str)
    def test_buckets_sum_to_latency(self, model):
        tracker = run_with_journeys(model)
        assert tracker.journeys, f"{model}: no journeys tracked"
        decomposed = 0
        for journey in tracker.journeys:
            breakdown = decompose(journey, SERVERS)
            for point, path, latency in paths_of(journey, breakdown):
                decomposed += 1
                total = sum(path.buckets.values())
                assert math.isclose(total, latency,
                                    rel_tol=1e-9, abs_tol=1e-6), (
                    f"{model} {point} key={journey.key} "
                    f"v={journey.version}: buckets {path.buckets} sum to "
                    f"{total}, latency {latency}")
                assert all(value >= 0 for value in path.buckets.values()), (
                    f"{model} {point}: negative bucket in {path.buckets}")
                assert set(path.buckets) == set(BUCKETS)
                assert path.latency_ns == latency
        assert decomposed > 0, f"{model}: nothing completed to decompose"


class TestAggregation:
    @pytest.fixture(scope="class")
    def tracker(self):
        return run_with_journeys(all_ddp_models()[0])

    @pytest.fixture(scope="class")
    def report(self, tracker):
        return aggregate_journeys(tracker.journeys, SERVERS,
                                  label="test", dropped=tracker.dropped)

    def test_mean_buckets_sum_to_mean_latency(self, report):
        for aggregate in (report.vp, report.dp):
            assert aggregate is not None
            assert math.isclose(sum(aggregate.buckets_ns.values()),
                                aggregate.mean_latency_ns,
                                rel_tol=1e-9, abs_tol=1e-6)

    def test_counts_add_up(self, report):
        assert report.vp.count + report.vp_incomplete == report.journeys
        assert report.dp.count + report.dp_incomplete == report.journeys
        assert sum(points["vp"].count for points in report.by_node.values()
                   if points["vp"]) == report.vp.count
        assert sum(points["vp"].count for points in report.by_hotness.values()
                   if points["vp"]) == report.vp.count

    def test_slowest_ranked_by_dp(self, report):
        latencies = [b.dp.latency_ns for b in report.slowest if b.dp]
        assert latencies == sorted(latencies, reverse=True)

    def test_format_renders_every_section(self, report):
        text = format_waterfall(report)
        assert "critical-path waterfall" in text
        assert "VP (visibility)" in text and "DP (durability)" in text
        for bucket in BUCKETS:
            assert bucket in text
        assert "by coordinator node:" in text
        assert "by key hotness:" in text
        assert "slowest updates" in text

    def test_json_shape(self, report):
        doc = waterfall_json(report)
        assert doc["buckets"] == list(BUCKETS)
        assert doc["journeys"] == report.journeys
        assert set(doc["vp"]) == {"count", "mean_latency_ns", "buckets_ns",
                                  "fractions"}
        assert math.isclose(sum(doc["vp"]["fractions"].values()), 1.0,
                            rel_tol=1e-9)
        for entry in doc["slowest"]:
            assert {"key", "version", "coordinator", "vp", "dp"} <= set(entry)

    def test_empty_population(self):
        report = aggregate_journeys([], SERVERS)
        assert report.vp is None and report.dp is None
        assert report.journeys == 0 and not report.slowest
        assert "no update reached" in format_waterfall(report)
        assert waterfall_json(report)["vp"] is None


class TestDecomposeEdgeCases:
    def test_incomplete_journey_yields_none(self):
        journey = UpdateJourney(key=1, version=(1, 0), coordinator=0,
                                client_issue_ns=0.0, issue_ns=10.0)
        journey.applies = {0: 20.0}  # only 1 of 3 replicas
        breakdown = decompose(journey, SERVERS)
        assert breakdown.vp is None and breakdown.dp is None

    def test_missing_send_attributed_to_network(self):
        """A journey with a recv but no matching send (pruned trace)
        still conserves: the unexplained gap lands in ``network``."""
        journey = UpdateJourney(key=1, version=(1, 0), coordinator=0,
                                client_issue_ns=0.0, issue_ns=10.0)
        journey.applies = {0: 12.0, 1: 40.0, 2: 30.0}
        journey.recvs = {1: 35.0, 2: 25.0}  # no sends recorded
        path = decompose(journey, SERVERS).vp
        assert path is not None and path.node == 1
        assert math.isclose(sum(path.buckets.values()), 40.0)
        assert path.buckets["network"] == 25.0  # issue 10 -> recv 35
