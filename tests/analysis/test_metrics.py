"""Tests for metrics collection and summarization."""

import math

import pytest

from repro.analysis.metrics import Metrics, OpRecord, Summary


def op(op_type, start, end, node=0, client=0, key=1):
    return OpRecord(op_type=op_type, node=node, client=client, key=key,
                    start_ns=start, end_ns=end)


class TestMetrics:
    def test_latency(self):
        record = op("read", 10.0, 35.0)
        assert record.latency_ns == 25.0

    def test_summarize_throughput(self):
        metrics = Metrics()
        for i in range(10):
            metrics.record_op(op("read", i * 100.0, i * 100.0 + 50.0))
        summary = metrics.summarize(duration_ns=1000.0)
        assert summary.requests == 10
        assert summary.throughput_ops_per_s == pytest.approx(10 / 1000e-9)

    def test_warmup_excluded(self):
        metrics = Metrics()
        metrics.record_op(op("read", 0.0, 50.0))
        metrics.record_op(op("read", 500.0, 600.0))
        metrics.warmup_end_ns = 100.0
        summary = metrics.summarize(duration_ns=1000.0)
        assert summary.requests == 1
        assert summary.mean_read_ns == pytest.approx(100.0)

    def test_read_write_split(self):
        metrics = Metrics()
        metrics.record_op(op("read", 0, 10))
        metrics.record_op(op("write", 0, 30))
        summary = metrics.summarize(100)
        assert summary.mean_read_ns == pytest.approx(10)
        assert summary.mean_write_ns == pytest.approx(30)
        assert summary.mean_access_ns == pytest.approx(20)

    def test_percentiles(self):
        metrics = Metrics()
        for latency in range(1, 101):
            metrics.record_op(op("read", 0, float(latency)))
        summary = metrics.summarize(1000)
        assert summary.p95_read_ns == pytest.approx(95.0)
        assert summary.p99_read_ns == pytest.approx(99.0)

    def test_non_request_ops_excluded_from_throughput(self):
        metrics = Metrics()
        metrics.record_op(op("read", 0, 10))
        metrics.record_op(op("persist", 0, 10))
        metrics.record_op(op("txn", 0, 10))
        assert metrics.summarize(100).requests == 1

    def test_empty_latencies_are_nan(self):
        summary = Metrics().summarize(100)
        assert math.isnan(summary.mean_read_ns)
        assert summary.requests == 0

    def test_message_accounting(self):
        metrics = Metrics()
        metrics.record_message("INV", 88)
        metrics.record_message("INV", 88)
        metrics.record_message("ACK", 16)
        assert metrics.total_messages == 3
        assert metrics.total_bytes == 192
        assert metrics.messages_by_type["INV"] == 2

    def test_causal_buffer_peak(self):
        metrics = Metrics()
        metrics.note_causal_buffer(3)
        metrics.note_causal_buffer(7)
        metrics.note_causal_buffer(2)
        assert metrics.causal_buffer_peak == 7
        assert metrics.causal_buffered_total == 3


class TestNormalization:
    def test_normalized_to_baseline(self):
        metrics = Metrics()
        metrics.record_op(op("read", 0, 10))
        metrics.record_op(op("write", 0, 20))
        metrics.record_message("INV", 100)
        fast = metrics.summarize(100)

        slow_metrics = Metrics()
        slow_metrics.record_op(op("read", 0, 20))
        slow_metrics.record_op(op("write", 0, 40))
        slow_metrics.record_message("INV", 200)
        slow = slow_metrics.summarize(200)

        norm = fast.normalized_to(slow)
        assert norm["throughput"] == pytest.approx(2.0)
        assert norm["mean_read"] == pytest.approx(0.5)
        assert norm["traffic_bytes"] == pytest.approx(0.5)

    def test_read_conflict_fraction(self):
        metrics = Metrics()
        metrics.record_op(op("read", 0, 10))
        metrics.record_op(op("read", 0, 10))
        metrics.reads_blocked_by_unpersisted = 1
        summary = metrics.summarize(100)
        assert summary.read_conflict_fraction == pytest.approx(0.5)
