"""Tests for the log-bucketed latency histogram, incl. property tests
comparing its quantiles to exact ones within the promised error."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import LatencyHistogram


class TestBasics:
    def test_empty(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert math.isnan(hist.mean)
        assert math.isnan(hist.percentile(0.5))
        assert hist.render() == "(empty histogram)"

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(precision=0)
        with pytest.raises(ValueError):
            LatencyHistogram(precision=13)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_mean_min_max_exact(self):
        hist = LatencyHistogram()
        for value in [10.0, 20.0, 90.0]:
            hist.record(value)
        assert hist.mean == pytest.approx(40.0)
        assert hist.min == 10.0
        assert hist.max == 90.0
        assert hist.count == 3

    def test_single_value_percentiles(self):
        hist = LatencyHistogram()
        hist.record(1000.0)
        for fraction in (0.01, 0.5, 0.95, 1.0):
            assert hist.percentile(fraction) == pytest.approx(1000.0, rel=0.05)

    def test_percentile_fraction_validation(self):
        hist = LatencyHistogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_sub_unit_values(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(0.5)
        assert hist.count == 2
        assert hist.percentile(1.0) <= 1.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in range(1, 51):
            a.record(float(value))
        for value in range(51, 101):
            b.record(float(value))
        a.merge(b)
        assert a.count == 100
        assert a.percentile(0.5) == pytest.approx(50, rel=0.10)

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            LatencyHistogram(precision=4).merge(LatencyHistogram(precision=5))

    def test_buckets_ascending(self):
        hist = LatencyHistogram()
        for value in [3.0, 300.0, 30_000.0]:
            hist.record(value)
        lows = [low for low, _high, _count in hist.buckets()]
        assert lows == sorted(lows)

    def test_render_has_bars(self):
        hist = LatencyHistogram()
        for _ in range(10):
            hist.record(100.0)
        assert "#" in hist.render()


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=300),
       fraction=st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_percentile_within_relative_error(values, fraction):
    """Histogram quantiles stay within the promised relative error of
    the exact nearest-rank quantile."""
    hist = LatencyHistogram(precision=7)
    for value in values:
        hist.record(value)
    exact = sorted(values)[max(0, math.ceil(fraction * len(values)) - 1)]
    approx = hist.percentile(fraction)
    if exact < 1.0:
        assert approx <= 1.0
    else:
        assert abs(approx - exact) <= exact * (1 / 2 ** 7) + 1e-9 + exact * 0.01


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e9,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_count_and_mean_exact(values):
    hist = LatencyHistogram()
    for value in values:
        hist.record(value)
    assert hist.count == len(values)
    assert hist.mean == pytest.approx(sum(values) / len(values), rel=1e-9,
                                      abs=1e-9)
