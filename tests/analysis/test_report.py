"""Tests for result-table formatting."""

import math

import pytest

from repro.analysis.metrics import Metrics, OpRecord
from repro.analysis.report import (
    format_figure6_table,
    format_grid,
    format_summary_table,
)
from repro.core.model import Consistency as C, DdpModel, Persistency as P, all_ddp_models


def make_summary(read_ns=100.0, write_ns=200.0, ops=10):
    metrics = Metrics()
    for i in range(ops):
        metrics.record_op(OpRecord("read", 0, 0, 1, i * 1000.0,
                                   i * 1000.0 + read_ns))
        metrics.record_op(OpRecord("write", 0, 0, 1, i * 1000.0,
                                   i * 1000.0 + write_ns))
    metrics.record_message("INV", 88)
    return metrics.summarize(ops * 1000.0)


class TestSummaryTable:
    def test_contains_labels_and_columns(self):
        table = format_summary_table([("model-x", make_summary())])
        assert "model-x" in table
        assert "thr(Mops/s)" in table
        assert "rd(ns)" in table

    def test_baseline_adds_normalized_column(self):
        summary = make_summary()
        table = format_summary_table([("a", summary)], baseline=summary)
        assert "thr(norm)" in table
        assert "1.00" in table


class TestGrid:
    def test_grid_has_all_rows_and_columns(self):
        values = {model: 1.0 for model in all_ddp_models()}
        grid = format_grid(values, "Test grid")
        assert "Test grid" in grid
        for consistency in C:
            assert consistency.short_name in grid
        for persistency in P:
            assert persistency.short_name in grid

    def test_missing_cells_render_dashes(self):
        values = {DdpModel(C.CAUSAL, P.SYNCHRONOUS): 2.5}
        grid = format_grid(values, "Sparse")
        assert "--" in grid
        assert "2.50" in grid


class TestFigure6Table:
    def test_all_six_panels(self):
        summaries = {model: make_summary(read_ns=100 + i, write_ns=200 + i)
                     for i, model in enumerate(all_ddp_models())}
        text = format_figure6_table(summaries)
        for panel in ("(a) Throughput", "(b) Mean Read", "(c) Mean Write",
                      "(d) Mean Latency", "(e) 95th Percentile Read",
                      "(f) 95th Percentile Write"):
            assert panel in text

    def test_baseline_cell_is_one(self):
        summaries = {model: make_summary() for model in all_ddp_models()}
        text = format_figure6_table(summaries)
        assert "1.00" in text
