"""Fault-plan parsing and validation."""

import json

import pytest

from repro.faults import (FaultPlan, load_fault_plan, parse_crash_spec,
                          plan_from_crash_specs)


class TestLoadFaultPlan:
    def test_full_plan_round_trips(self, tmp_path):
        raw = {
            "seed": 11,
            "detection_delay_us": 2.5,
            "events": [
                {"kind": "crash", "node": 2, "at_us": 50,
                 "restart_after_us": 40},
                {"kind": "partition", "at_us": 20, "duration_us": 30,
                 "groups": [[0, 1], [2, 3, 4]]},
                {"kind": "drop", "at_us": 10, "duration_us": 5,
                 "probability": 0.25, "src": 0, "dst": 1},
                {"kind": "delay", "at_us": 15, "duration_us": 5,
                 "extra_us": 2.0},
                {"kind": "duplicate", "at_us": 25, "duration_us": 5,
                 "probability": 0.5},
                {"kind": "nvm_slow", "node": 1, "at_us": 30,
                 "duration_us": 20, "factor": 4.0},
            ],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(raw))
        plan = load_fault_plan(str(path))
        assert plan.seed == 11
        assert plan.detection_delay_ns == 2500.0
        assert len(plan.events) == 6
        # Events are time-ordered regardless of authoring order.
        assert [e.at_ns for e in plan.events] == sorted(
            e.at_ns for e in plan.events)
        crash = plan.events_of("crash")[0]
        assert crash.node == 2
        assert crash.at_ns == 50_000.0
        assert crash.restart_after_ns == 40_000.0
        partition = plan.events_of("partition")[0]
        assert partition.groups == ((0, 1), (2, 3, 4))
        assert partition.until_ns == 50_000.0
        # Echo converts back to microseconds.
        echo = plan.to_json()
        assert echo["seed"] == 11
        assert echo["events"][0]["kind"] == "drop"
        assert echo["events"][0]["probability"] == 0.25

    def test_accepts_dict_input(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 0, "at_us": 1}]})
        assert plan.events[0].kind == "crash"
        assert plan.detection_delay_ns == 3000.0

    def test_lossy_only_for_message_kinds(self):
        crash_only = load_fault_plan({"events": [
            {"kind": "crash", "node": 0, "at_us": 1},
            {"kind": "nvm_slow", "node": 1, "at_us": 1, "duration_us": 2,
             "factor": 2.0}]})
        assert not crash_only.lossy
        lossy = load_fault_plan({"events": [
            {"kind": "drop", "at_us": 1, "duration_us": 2,
             "probability": 0.1}]})
        assert lossy.lossy
        assert not FaultPlan().lossy

    @pytest.mark.parametrize("event,message", [
        ({"kind": "meteor", "at_us": 1}, "unknown kind"),
        ({"kind": "crash", "node": 0}, "at_us"),
        ({"kind": "crash", "node": 0, "at_us": 1, "duration_us": 5},
         "restart_after_us, not duration_us"),
        ({"kind": "crash", "node": 0, "at_us": 1, "restart_after_us": 0},
         "restart_after_us must be > 0"),
        ({"kind": "drop", "at_us": 1, "probability": 0.5}, "duration_us"),
        ({"kind": "drop", "at_us": 1, "duration_us": 5, "probability": 1.5},
         "probability"),
        ({"kind": "delay", "at_us": 1, "duration_us": 5}, "extra_us"),
        ({"kind": "nvm_slow", "node": 0, "at_us": 1, "duration_us": 5,
          "factor": 0.0}, "factor"),
        ({"kind": "partition", "at_us": 1, "duration_us": 5,
          "groups": [[0, 1]]}, "groups"),
        ({"kind": "partition", "at_us": 1, "duration_us": 5,
          "groups": [[0, 1], [1, 2]]}, "disjoint"),
        ({"kind": "drop", "at_us": 1, "duration_us": 5, "node": 2},
         "does not take node"),
        ({"kind": "crash", "node": 0, "at_us": 1, "src": 1},
         "does not take src"),
        ({"kind": "crash", "node": 0, "at_us": 1, "banana": True},
         "unknown fields"),
    ])
    def test_rejects_bad_events(self, event, message):
        with pytest.raises(ValueError, match=message):
            load_fault_plan({"events": [event]})

    def test_rejects_unknown_top_level(self):
        with pytest.raises(ValueError, match="top-level"):
            load_fault_plan({"seeds": 3, "events": []})

    def test_random_node_allowed(self):
        plan = load_fault_plan({"events": [{"kind": "crash", "at_us": 5}]})
        assert plan.events[0].node is None


class TestCrashSpecs:
    def test_spec_without_restart(self):
        event = parse_crash_spec("2@50")
        assert (event.kind, event.node, event.at_ns,
                event.restart_after_ns) == ("crash", 2, 50_000.0, None)

    def test_spec_with_restart(self):
        event = parse_crash_spec("1@30.5+40")
        assert event.node == 1
        assert event.at_ns == 30_500.0
        assert event.restart_after_ns == 40_000.0

    @pytest.mark.parametrize("spec", ["2", "@50", "x@50", "2@", "2@a+b"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="bad crash spec"):
            parse_crash_spec(spec)

    def test_plan_from_specs_sorted(self):
        plan = plan_from_crash_specs(["2@50", "0@10+5"], seed=3)
        assert plan.seed == 3
        assert [e.node for e in plan.events] == [0, 2]
        assert not plan.lossy
