"""Injector mechanics: crash lifecycle, verdicts, attachment discipline."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency
from repro.faults import (FaultInjector, FaultPlan, faults_json,
                          load_fault_plan)
from repro.workload.ycsb import WORKLOADS

MODEL = DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS)


def build(plan, model=MODEL, servers=3, clients=2, seed=2021):
    injector = FaultInjector(plan)
    cluster = Cluster(model,
                      config=ClusterConfig(servers=servers,
                                           clients_per_server=clients,
                                           seed=seed),
                      workload=WORKLOADS["A"], faults=injector)
    return cluster, injector


class TestAttachment:
    def test_single_use(self):
        plan = FaultPlan()
        cluster, injector = build(plan)
        with pytest.raises(RuntimeError, match="single-use"):
            injector.attach(cluster)

    def test_requires_membership(self):
        cluster, _ = build(FaultPlan())
        bare = Cluster(MODEL, config=ClusterConfig(servers=3,
                                                   clients_per_server=0))
        assert bare.membership is None
        with pytest.raises(RuntimeError, match="membership"):
            FaultInjector(FaultPlan()).attach(bare)

    def test_rejects_out_of_range_targets(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 7, "at_us": 1}]})
        with pytest.raises(ValueError, match="targets node 7"):
            build(plan)

    def test_network_hook_only_for_message_faults(self):
        crash_plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 0, "at_us": 5}]})
        cluster, _ = build(crash_plan)
        assert cluster.network.faults is None
        lossy_plan = load_fault_plan({"events": [
            {"kind": "drop", "at_us": 1, "duration_us": 2,
             "probability": 0.5}]})
        cluster, injector = build(lossy_plan)
        assert cluster.network.faults is injector
        assert cluster.membership.lossy

    def test_random_node_resolved_at_attach(self):
        plan = load_fault_plan({"seed": 4, "events": [
            {"kind": "crash", "at_us": 5}]})
        _, injector = build(plan)
        resolved = injector.resolved_events[0]
        assert resolved.node in (0, 1, 2)
        # Same plan seed resolves to the same node.
        _, injector2 = build(load_fault_plan(
            {"seed": 4, "events": [{"kind": "crash", "at_us": 5}]}))
        assert injector2.resolved_events[0].node == resolved.node


class TestCrashLifecycle:
    def test_crash_detect_restart_sequence(self):
        plan = load_fault_plan({"detection_delay_us": 2.0, "events": [
            {"kind": "crash", "node": 1, "at_us": 10,
             "restart_after_us": 15}]})
        cluster, injector = build(plan)
        cluster.run(60_000.0, warmup_ns=2_000.0)
        assert (injector.crashes, injector.detections,
                injector.restarts) == (1, 1, 1)
        kinds = [r["kind"] for r in injector.records]
        assert kinds == ["crash", "detect", "restart"]
        times = [r["t_us"] for r in injector.records]
        assert times == [10.0, 12.0, 25.0]
        # Membership round-tripped: epoch bumped twice, all live again.
        assert cluster.membership.epoch == 2
        assert sorted(cluster.membership.live) == [0, 1, 2]
        assert cluster.nodes[1].engine.alive

    def test_crash_without_restart_leaves_node_down(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 2, "at_us": 10}]})
        cluster, injector = build(plan)
        cluster.run(60_000.0, warmup_ns=2_000.0)
        assert injector.restarts == 0
        assert not cluster.nodes[2].engine.alive
        assert sorted(cluster.membership.live) == [0, 1]
        # The survivors kept completing writes against the shrunk set.
        live_clients = [c for c in cluster.clients
                        if c.node.node_id != 2]
        assert all(c.completed_requests > 0 for c in live_clients)

    def test_restart_before_detection_suppresses_it(self):
        """A blink shorter than the detector's resolution never bumps
        the epoch (marking the rebooted node crashed would wedge it)."""
        plan = load_fault_plan({"detection_delay_us": 10.0, "events": [
            {"kind": "crash", "node": 1, "at_us": 10,
             "restart_after_us": 2}]})
        cluster, injector = build(plan)
        cluster.run(60_000.0, warmup_ns=2_000.0)
        assert injector.detections == 0
        # Never marked crashed, so the rejoin no-ops: epoch untouched.
        assert cluster.membership.epoch == 0
        assert sorted(cluster.membership.live) == [0, 1, 2]

    def test_restarted_node_reseeded_from_nvm(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 1, "at_us": 20,
             "restart_after_us": 10}]})
        cluster, _ = build(plan, model=DdpModel(Consistency.LINEARIZABLE,
                                                Persistency.STRICT))
        cluster.run(80_000.0, warmup_ns=2_000.0)
        engine = cluster.engines[1]
        recovered_any = False
        for replica in engine.replicas:
            if replica.persisted_version[0] > 0:
                recovered_any = True
                assert replica.applied_version >= replica.persisted_version
        assert recovered_any

    def test_abandons_dead_coordinators_transactions(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 0, "at_us": 20}]})
        cluster, injector = build(
            plan, model=DdpModel(Consistency.TRANSACTIONAL,
                                 Persistency.SYNCHRONOUS), clients=3)
        cluster.run(100_000.0, warmup_ns=2_000.0)
        # Node 0's clients were mid-transaction at the crash; those
        # transactions must not linger in the table squashing survivors.
        assert all(txn.node != 0
                   for txn in cluster.txn_table._active.values())


class TestNetworkVerdicts:
    def test_partition_drops_cross_group_only(self):
        plan = load_fault_plan({"events": [
            {"kind": "partition", "at_us": 0, "duration_us": 10_000,
             "groups": [[0], [1, 2]]}]})
        cluster, injector = build(plan)
        verdict = injector.on_message(0, 1, None, 64)
        assert verdict is not None and verdict.drop
        assert injector.on_message(1, 2, None, 64) is None
        assert injector.on_message(2, 1, None, 64) is None

    def test_windows_respect_time_bounds(self):
        plan = load_fault_plan({"events": [
            {"kind": "drop", "at_us": 10, "duration_us": 5,
             "probability": 1.0}]})
        cluster, injector = build(plan)
        assert injector.on_message(0, 1, None, 64) is None  # before window
        cluster.sim.run(until=12_000.0)
        verdict = injector.on_message(0, 1, None, 64)
        assert verdict is not None and verdict.drop
        cluster.sim.run(until=15_000.0)
        assert injector.on_message(0, 1, None, 64) is None  # after window

    def test_src_dst_matchers(self):
        plan = load_fault_plan({"events": [
            {"kind": "drop", "at_us": 0, "duration_us": 10_000,
             "probability": 1.0, "src": 0, "dst": 2}]})
        _, injector = build(plan)
        assert injector.on_message(0, 2, None, 64).drop
        assert injector.on_message(0, 1, None, 64) is None
        assert injector.on_message(2, 0, None, 64) is None

    def test_delay_and_duplicate_compose(self):
        plan = load_fault_plan({"events": [
            {"kind": "delay", "at_us": 0, "duration_us": 10_000,
             "extra_us": 2.0},
            {"kind": "duplicate", "at_us": 0, "duration_us": 10_000,
             "probability": 1.0}]})
        _, injector = build(plan)
        verdict = injector.on_message(0, 1, None, 64)
        assert not verdict.drop
        assert verdict.delay_ns == 2_000.0
        assert verdict.copies == 2


class TestNvmSlowdown:
    def test_slowdown_window_applied_and_reverted(self):
        plan = load_fault_plan({"events": [
            {"kind": "nvm_slow", "node": 0, "at_us": 10, "duration_us": 20,
             "factor": 8.0}]})
        cluster, injector = build(plan)
        cluster.sim.run(until=15_000.0)
        assert cluster.nodes[0].memory.nvm.slowdown == 8.0
        assert cluster.nodes[1].memory.nvm.slowdown == 1.0
        cluster.sim.run(until=40_000.0)
        assert cluster.nodes[0].memory.nvm.slowdown == 1.0
        assert injector.nvm_slow_windows == 1


class TestFaultsJson:
    def test_report_section_shape(self):
        plan = load_fault_plan({"events": [
            {"kind": "crash", "node": 1, "at_us": 10,
             "restart_after_us": 10},
            {"kind": "drop", "at_us": 5, "duration_us": 30,
             "probability": 0.2}]})
        cluster, injector = build(plan)
        cluster.run(60_000.0, warmup_ns=2_000.0)
        section = faults_json(injector)
        assert section["plan"]["events"][0]["kind"] == "drop"
        assert section["injected"]["crashes"] == 1
        assert section["injected"]["restarts"] == 1
        assert section["injected"]["messages_dropped"] == \
            cluster.network.dropped_messages
        assert section["membership"]["live"] == [0, 1, 2]
        assert section["rounds"]["resends"] == \
            sum(e.round_resends for e in cluster.engines)
        assert section["events_dropped"] == 0
        kinds = {r["kind"] for r in section["events"]}
        assert {"crash", "detect", "restart", "drop", "drop_end"} <= kinds
