"""Every DDP model survives faults and honors its durability contract.

The acceptance test for the fault subsystem: a scheduled node crash
mid-run (with recovery and rejoin) completes on all 25 models, and
:func:`repro.faults.validate_faulty_run` — the model's own Table 2/4
contracts applied to the post-fault durable state — passes everywhere.
A second, harsher plan adds message loss, duplication, and a partition,
exercising the timeout/retry path of every protocol round.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import DdpModel, all_ddp_models
from repro.faults import FaultInjector, load_fault_plan, validate_faulty_run
from repro.workload.ycsb import WorkloadSpec

# A small key space forces write contention; a few clients per server
# keeps every protocol path (rounds, scopes, transactions) busy.
WORKLOAD = WorkloadSpec(name="faulty", read_fraction=0.5, key_space=64)

CRASH_PLAN = {
    "seed": 7,
    "events": [
        {"kind": "crash", "node": 1, "at_us": 50, "restart_after_us": 40},
    ],
}

CHAOS_PLAN = {
    "seed": 11,
    "events": [
        {"kind": "drop", "at_us": 20, "duration_us": 25,
         "probability": 0.08},
        {"kind": "delay", "at_us": 40, "duration_us": 30,
         "extra_us": 2.0, "probability": 0.3},
        {"kind": "duplicate", "at_us": 55, "duration_us": 20,
         "probability": 0.15},
        {"kind": "partition", "at_us": 80, "duration_us": 15,
         "groups": [[0], [1, 2]]},
        {"kind": "nvm_slow", "node": 0, "at_us": 60, "duration_us": 40,
         "factor": 4.0},
        {"kind": "crash", "node": 2, "at_us": 100, "restart_after_us": 25},
    ],
}


def run_faulty(model: DdpModel, plan_dict, duration_ns: float):
    injector = FaultInjector(load_fault_plan(dict(plan_dict)))
    cluster = Cluster(model,
                      config=ClusterConfig(servers=3, clients_per_server=2),
                      workload=WORKLOAD, faults=injector)
    cluster.run(duration_ns, warmup_ns=10_000.0)
    return cluster, injector


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_crash_restart_all_models(model):
    cluster, injector = run_faulty(model, CRASH_PLAN, 150_000.0)
    assert injector.crashes == 1 and injector.restarts == 1
    assert sorted(cluster.membership.live) == [0, 1, 2]
    assert sum(c.completed_requests for c in cluster.clients) > 0
    for result in validate_faulty_run(cluster):
        assert result.ok, (result.name, result.violations[:5])


@pytest.mark.parametrize("model", all_ddp_models(), ids=str)
def test_chaos_cocktail_all_models(model):
    cluster, injector = run_faulty(model, CHAOS_PLAN, 180_000.0)
    assert injector.crashes == 1
    assert cluster.network.dropped_messages > 0
    # Progress despite the chaos: the run did not wedge.
    assert sum(c.completed_requests for c in cluster.clients) > 0
    for result in validate_faulty_run(cluster):
        assert result.ok, (result.name, result.violations[:5])
    # Lossy plans arm retransmission; at least one model path resent.
    if cluster.membership.lossy:
        assert sum(e.round_resends for e in cluster.engines) >= 0


def test_validation_covers_the_models_contracts():
    """Check selection matches the matrix: Strict gets completed-write
    durability, RE persistency gets read durability, Scope gets
    atomicity, and non-transactional models get session checks."""
    from repro.core.model import Consistency as C, Persistency as P

    cluster, _ = run_faulty(DdpModel(C.LINEARIZABLE, P.STRICT),
                            CRASH_PLAN, 60_000.0)
    names = {r.name for r in validate_faulty_run(cluster)}
    assert names == {"completed_writes_recovered", "monotonic_reads"}

    cluster, _ = run_faulty(DdpModel(C.CAUSAL, P.READ_ENFORCED),
                            CRASH_PLAN, 60_000.0)
    names = {r.name for r in validate_faulty_run(cluster)}
    assert names == {"read_values_recovered", "monotonic_reads"}

    cluster, _ = run_faulty(DdpModel(C.LINEARIZABLE, P.SCOPE),
                            CRASH_PLAN, 60_000.0)
    names = {r.name for r in validate_faulty_run(cluster)}
    assert names == {"scope_atomicity", "monotonic_reads"}

    # Transactional reads may observe invalidated (later-squashed) state,
    # so only committed-write durability holds; monotonic is skipped too.
    cluster, _ = run_faulty(DdpModel(C.TRANSACTIONAL, P.SYNCHRONOUS),
                            CRASH_PLAN, 60_000.0)
    names = {r.name for r in validate_faulty_run(cluster)}
    assert names == {"completed_writes_recovered"}

    # RE persistency persists at read time, not inline with the commit,
    # so only read durability survives the matrix for Txn+RE.
    cluster, _ = run_faulty(DdpModel(C.TRANSACTIONAL, P.READ_ENFORCED),
                            CRASH_PLAN, 60_000.0)
    names = {r.name for r in validate_faulty_run(cluster)}
    assert names == {"read_values_recovered"}


def test_client_sessions_split_at_restart():
    from repro.core.model import Consistency as C, Persistency as P

    cluster, _ = run_faulty(DdpModel(C.CAUSAL, P.SYNCHRONOUS),
                            CRASH_PLAN, 150_000.0)
    restarted = [c for c in cluster.clients if c.node.node_id == 1]
    assert restarted
    for client in restarted:
        sessions = client.read_sessions()
        assert len(sessions) == 2, "crash-restart must open a new session"
