"""The repo self-lints clean — the CI gate, as a test.

If this fails, either new code broke a determinism/tracer/dispatch
invariant, or it needs an inline waiver with a justification.
"""

from repro.devtools import run_lint

from .conftest import REPO_ROOT


def _paths(*names):
    return [str(REPO_ROOT / name) for name in names]


class TestSelfLint:
    def test_src_is_clean(self):
        result = run_lint(_paths("src"))
        assert result.clean, "\n" + "\n".join(
            f.format() for f in result.unwaived)

    def test_whole_repo_is_clean(self):
        result = run_lint(_paths("src", "tests", "benchmarks"))
        assert result.clean, "\n" + "\n".join(
            f.format() for f in result.unwaived)

    def test_waivers_in_tree_are_all_used_and_justified(self):
        # run_lint already turns stale/malformed waivers into findings;
        # this documents the current deliberate waiver count.
        result = run_lint(_paths("src", "tests", "benchmarks"))
        assert result.clean
        assert len(result.waived) >= 4
        for finding in result.waived:
            assert finding.waive_reason

    def test_all_rules_ran(self):
        result = run_lint(_paths("src"))
        assert {"rng-discipline", "wall-clock-ban", "tracer-guard",
                "tracer-truthiness", "unordered-iteration",
                "dispatch-completeness", "mutable-default",
                "bare-except"} <= set(result.rules)
