"""Passing fixture: effects only from ordered iteration."""


class Node:
    def __init__(self, sim, peers, waiting):
        self.sim = sim
        self.peers = list(peers)
        self.waiting = waiting
        self.write_set = set()

    def broadcast(self, message):
        for dst in self.peers:
            self._send(dst, message)

    def flush(self):
        for key in sorted(self.waiting.keys()):
            self.sim.schedule(0.0, key)

    def settle(self):
        for key in sorted(self.write_set):
            self._send(0, key)

    def tally(self):
        # Order-insensitive set iteration (pure reduction) is fine.
        return sum(1 for _ in self.write_set)

    def drain(self):
        for key, value in sorted(self.waiting.items()):
            self._send(key, value)

    def snapshot(self):
        # Comprehension without effects: order only shapes a value the
        # caller may sort.
        return {key for key in self.write_set}

    def blast(self, message):
        return [self._send(dst, message) for dst in sorted(self.peers)]

    def _send(self, dst, message):
        pass
