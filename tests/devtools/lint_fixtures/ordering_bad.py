"""Failing fixture: an engine whose handlers do not commute.

This is the injected non-commuting mutation the ordering rules must
catch: a last-write-wins store put keyed by message payload (raw
write), a send guarded by that racy state, and a collaborator call the
effect model cannot resolve.
"""


class RacyEngine:
    _DISPATCH = {
        MsgType.INV: "_on_inv",
        MsgType.ACK: "_on_ack",
        MsgType.VAL: "_on_val",
    }

    def __init__(self, sim, store, network, gizmo):
        self.sim = sim
        self.store = store
        self.network = network
        self.gizmo = gizmo

    def _on_inv(self, message):
        # Raw write: whichever same-timestamp INV pops last wins.
        self.store.put(message.key, message.value)

    def _on_ack(self, message):
        # Send guarded by raw-written state: whether the reply fires
        # depends on tie order.
        if self.store.get(message.key) is None:
            self.network.send(message.src, message)

    def _on_val(self, message):
        # Escapes the effect model entirely.
        self.gizmo.refresh(message.key)
