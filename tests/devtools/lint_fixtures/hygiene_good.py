"""Passing fixture: None defaults and typed excepts."""


def collect(item, into=None):
    into = into if into is not None else []
    into.append(item)
    return into


class Recoverer:
    def __init__(self, peers=()):
        self.peers = list(peers)

    def scan(self, log):
        try:
            return log.replay()
        except (OSError, ValueError):
            return None
