"""Passing fixture: an engine whose handlers commute.

Every write is version-guarded monotone (``replica.apply``), sends are
unconditional or guarded only by message payload, and every call is
covered by the intrinsic effect model.
"""


class CommutingEngine:
    _DISPATCH = {
        MsgType.INV: "_on_inv",
        MsgType.ACK: "_on_ack",
    }

    def __init__(self, sim, replicas, network, metrics):
        self.sim = sim
        self.replicas = replicas
        self.network = network
        self.metrics = metrics

    def _on_inv(self, message):
        replica = self.replicas.get(message.key)
        # Monotone install: any pop order converges to the LWW winner.
        replica.apply(message.version, message.value)
        self.metrics.count("inv")
        self.network.send(message.src, message)

    def _on_ack(self, message):
        if message.version is not None:
            self.network.send(message.src, message)
