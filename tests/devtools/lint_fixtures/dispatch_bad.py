"""Failing fixture: an engine whose dispatch table is incomplete.

Handles only INV, and maps UPD to a method that does not exist.
"""

from repro.core.messages import MsgType


class BrokenEngine:
    _DISPATCH = {
        MsgType.INV: "_on_inv",
        MsgType.UPD: "_on_upd_typo",
    }

    def _on_inv(self, message):
        pass


class TableFreeEngine:
    """No _DISPATCH at all."""
