"""Failing fixture: protocol effects driven by set iteration order."""


class Node:
    def __init__(self, sim, peers, waiting):
        self.sim = sim
        self.peers = set(peers)
        self.waiting = waiting
        self.write_set = set()

    def broadcast(self, message):
        for dst in self.peers:
            self._send(dst, message)

    def flush(self):
        for key in self.waiting.keys():
            self.sim.schedule(0.0, key)

    def settle(self):
        for key in self.write_set:
            self._send(0, key)

    def drain(self):
        for key, value in self.waiting.items():
            self._send(key, value)

    def push(self):
        for value in self.waiting.values():
            self.sim.schedule(0.0, value)

    def blast(self, message):
        return [self._send(dst, message) for dst in self.peers]

    def ping_all(self):
        return {dst: self._send(dst, None) for dst in self.peers}

    def _send(self, dst, message):
        pass
