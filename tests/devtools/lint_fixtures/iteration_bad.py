"""Failing fixture: protocol effects driven by set iteration order."""


class Node:
    def __init__(self, sim, peers, waiting):
        self.sim = sim
        self.peers = set(peers)
        self.waiting = waiting
        self.write_set = set()

    def broadcast(self, message):
        for dst in self.peers:
            self._send(dst, message)

    def flush(self):
        for key in self.waiting.keys():
            self.sim.schedule(0.0, key)

    def settle(self):
        for key in self.write_set:
            self._send(0, key)

    def _send(self, dst, message):
        pass
