"""Passing fixture: every MsgType member mapped to a real handler."""

from repro.core.messages import MsgType


class CompleteEngine:
    _DISPATCH = {member: "_on_any" for member in MsgType}

    def _on_any(self, message):
        pass


class InheritingEngine(CompleteEngine):
    """Coverage via the MRO, like HybridProtocolNode."""
