"""Failing fixture: mutable defaults and a bare except."""


def collect(item, into=[]):
    into.append(item)
    return into


def index(key, table={}):
    return table.setdefault(key, len(table))


class Recoverer:
    def __init__(self, peers=set()):
        self.peers = peers

    def scan(self, log):
        try:
            return log.replay()
        except:
            return None
