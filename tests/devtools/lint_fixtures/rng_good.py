"""Passing fixture: randomness flows through a SeededStream fork."""


def jitter(rng) -> float:
    # rng is a SeededStream forked from the run's root seed.
    return rng.expovariate(1.0)


def build(root):
    return root.fork("service-jitter")
