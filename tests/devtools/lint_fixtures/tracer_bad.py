"""Failing fixture: unguarded emits and tracer truthiness."""


class Node:
    def __init__(self, sim, tracer):
        self.sim = sim
        # The PR-1 bug shape: an *empty* tracer is falsy, so this
        # silently replaces a real tracer with the null one.
        self.tracer = tracer or None

    def handle(self, message):
        # No .enabled guard: marshals arguments even with tracing off.
        self.tracer.emit(self.sim.now, "msg", node=0, msg=message)

    def describe(self, tracer):
        if tracer:
            return "tracing"
        return "quiet"
