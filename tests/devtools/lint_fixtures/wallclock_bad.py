"""Failing fixture: wall-clock reads and salted hashing."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def when() -> str:
    return datetime.now().isoformat()


def bank_for(key: str, banks: int) -> int:
    return hash(key) % banks
