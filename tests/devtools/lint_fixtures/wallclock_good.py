"""Passing fixture: simulated time and stable hashing only."""

import hashlib


def stamp(sim) -> float:
    return sim.now


def bank_for(key: int, banks: int) -> int:
    return key % banks


def digest(name: str) -> int:
    raw = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(raw, "big")
