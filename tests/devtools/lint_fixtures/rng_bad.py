"""Failing fixture: every flavour of undisciplined randomness."""

import os
import random  # noqa: F401
import uuid  # noqa: F401
from secrets import token_bytes  # noqa: F401


def jitter() -> float:
    return random.random()


def salt() -> bytes:
    return os.urandom(8)
