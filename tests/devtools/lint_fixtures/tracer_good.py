"""Passing fixture: every guard pattern the rule recognises."""


class Node:
    def __init__(self, sim, tracer):
        self.sim = sim
        self.tracer = tracer if tracer is not None else None

    def handle(self, message):
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "msg", node=0, msg=message)

    def round_trip(self, message):
        tracing = self.tracer.enabled
        if tracing:
            start = self.sim.now
            self.tracer.emit(start, "msg_recv", node=0)
        if tracing:
            self.tracer.span(start, self.sim.now, "msg_handle", node=0)


def report(tracer, now):
    if tracer is None or not tracer.enabled:
        return
    tracer.emit(now, "recovery_scan", dur=1.0)
