"""Per-rule fixture tests: one failing + one passing fixture per rule.

A rule whose failing fixture stops firing is dead code — these tests
are the acceptance criterion that every rule actually bites.
"""

import pytest


def rules_hit(result):
    return sorted({f.rule for f in result.unwaived})


class TestRngDiscipline:
    def test_fires_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("rng_bad.py", rules=["rng-discipline"])
        findings = result.unwaived
        assert len(findings) == 4  # random, uuid, secrets, os.urandom
        assert all(f.rule == "rng-discipline" for f in findings)
        assert any("os.urandom" in f.message for f in findings)
        assert any("SeededStream" in f.message for f in findings)

    def test_clean_fixture_passes(self, lint_fixture):
        assert lint_fixture("rng_good.py",
                            rules=["rng-discipline"]).clean

    def test_sim_rng_is_the_allowed_seam(self, lint_fixture):
        result = lint_fixture("rng_bad.py", rules=["rng-discipline"],
                              virtual_path="src/repro/sim/rng.py")
        assert result.clean

    def test_applies_outside_src_too(self, lint_fixture):
        result = lint_fixture("rng_bad.py", rules=["rng-discipline"],
                              virtual_path="tests/test_whatever.py")
        assert not result.clean


class TestWallClockBan:
    def test_fires_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("wallclock_bad.py", rules=["wall-clock-ban"])
        messages = [f.message for f in result.unwaived]
        assert len(messages) == 3  # time.time, datetime.now, hash
        assert any("time.time" in m for m in messages)
        assert any("datetime.now" in m for m in messages)
        assert any("hash()" in m for m in messages)

    def test_clean_fixture_passes(self, lint_fixture):
        assert lint_fixture("wallclock_good.py",
                            rules=["wall-clock-ban"]).clean

    def test_scoped_to_src(self, lint_fixture):
        result = lint_fixture("wallclock_bad.py", rules=["wall-clock-ban"],
                              virtual_path="benchmarks/test_speed.py")
        assert result.clean  # benchmarks may time themselves


class TestTracerGuard:
    def test_fires_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("tracer_bad.py",
                              rules=["tracer-guard", "tracer-truthiness"])
        assert rules_hit(result) == ["tracer-guard", "tracer-truthiness"]
        guard = [f for f in result.unwaived if f.rule == "tracer-guard"]
        truthy = [f for f in result.unwaived
                  if f.rule == "tracer-truthiness"]
        assert len(guard) == 1  # the unguarded emit
        assert len(truthy) == 2  # `tracer or None` and `if tracer:`

    def test_all_guard_patterns_accepted(self, lint_fixture):
        result = lint_fixture("tracer_good.py",
                              rules=["tracer-guard", "tracer-truthiness"])
        assert result.clean


class TestUnorderedIteration:
    def test_fires_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("iteration_bad.py",
                              rules=["unordered-iteration"])
        findings = result.unwaived
        # set(...)-typed attribute, dict.keys()/.items()/.values(),
        # *_set attribute, and the two effectful comprehensions.
        assert len(findings) == 7
        assert all("sorted" in f.message for f in findings)
        comps = [f for f in findings if "comprehension" in f.message]
        assert len(comps) == 2

    def test_sorted_iteration_passes(self, lint_fixture):
        assert lint_fixture("iteration_good.py",
                            rules=["unordered-iteration"]).clean


class TestHygiene:
    def test_fires_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("hygiene_bad.py",
                              rules=["mutable-default", "bare-except"])
        mutable = [f for f in result.unwaived
                   if f.rule == "mutable-default"]
        bare = [f for f in result.unwaived if f.rule == "bare-except"]
        assert len(mutable) == 3  # [], {}, set()
        assert len(bare) == 1

    def test_clean_fixture_passes(self, lint_fixture):
        assert lint_fixture("hygiene_good.py",
                            rules=["mutable-default", "bare-except"]).clean


class TestRuleCatalog:
    def test_every_rule_documents_its_invariant(self):
        from repro.devtools import all_rules
        rules = all_rules()
        assert len(rules) >= 8
        for rule in rules:
            assert rule.summary, rule.id
            assert rule.guards, rule.id

    def test_expected_ids_present(self):
        from repro.devtools import all_rules
        ids = {rule.id for rule in all_rules()}
        assert {"rng-discipline", "wall-clock-ban", "tracer-guard",
                "tracer-truthiness", "unordered-iteration",
                "dispatch-completeness", "mutable-default",
                "bare-except", "effect-conflict",
                "schedule-sensitive-send", "untracked-effect"} <= ids

    def test_unknown_rule_id_is_usage_error(self, lint_fixture):
        from repro.devtools import UsageError
        with pytest.raises(UsageError):
            lint_fixture("rng_good.py", rules=["no-such-rule"])
