"""The static half of the determinism certificate.

Covers the interprocedural effect analysis (callgraph + effects), the
three ordering rules through the lint machinery, the golden effect-set
pins for every dispatch handler, and the static side of the injected
non-commuting mutation (the ``ordering_bad`` fixture engine — its
dynamic twin lives in test_sanitizer.py).
"""

import json
from pathlib import Path

from repro.devtools.cli import (ORDER_RULES, effects_document,
                                flagged_message_pairs)
from repro.devtools.effects import analyze_engines, conflicts
from repro.devtools.engine import FileContext, run_lint

from .conftest import FIXTURES, REPO_ROOT

GOLDEN = Path(__file__).resolve().parent / "golden_effects.json"

ENGINE_SOURCES = ["src/repro/core/engine.py", "src/repro/variants/leader.py",
                  "src/repro/hybrid/engine.py"]


def _contexts_from(name):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return [FileContext.from_source("src/repro/fx.py", source)]


def _src_reports():
    return analyze_engines([
        FileContext.from_file(str(REPO_ROOT / "src" / p))
        for p in ("repro/core/engine.py", "repro/core/replica.py",
                  "repro/variants/leader.py", "repro/hybrid/engine.py")])


class TestEffectAnalysis:
    def test_raw_conflict_detected(self):
        reports = analyze_engines(_contexts_from("ordering_bad.py"))
        found = conflicts(reports["RacyEngine"])
        locations = {c.location for c in found}
        assert "store.slot" in locations
        pairs = {c.pair for c in found}
        # the raw writer conflicts with itself and with the reader
        assert ("_on_inv", "_on_inv") in pairs
        assert ("_on_ack", "_on_inv") in pairs

    def test_commuting_engine_is_clean(self):
        reports = analyze_engines(_contexts_from("ordering_good.py"))
        assert conflicts(reports["CommutingEngine"]) == []
        # and nothing escaped the model
        for report in reports["CommutingEngine"]:
            assert not report.effects.unresolved

    def test_guarded_send_recorded(self):
        reports = analyze_engines(_contexts_from("ordering_bad.py"))
        by_handler = {r.handler: r for r in reports["RacyEngine"]}
        sends = by_handler["_on_ack"].effects.guarded_sends
        assert sends
        guards = set().union(*(g for _, g in sends))
        assert "store.slot" in guards

    def test_unresolved_call_surfaces(self):
        reports = analyze_engines(_contexts_from("ordering_bad.py"))
        by_handler = {r.handler: r for r in reports["RacyEngine"]}
        assert any("refresh" in call
                   for call in by_handler["_on_val"].effects.unresolved)

    def test_dispatch_inheritance_reaches_all_engines(self):
        reports = _src_reports()
        assert set(reports) == {"ProtocolNode", "LeaderProtocolNode",
                                "HybridProtocolNode"}
        for engine, handler_reports in reports.items():
            assert handler_reports, engine

    def test_src_handlers_fully_modeled(self):
        # Zero unresolved calls anywhere: the certificate has no holes.
        for engine, handler_reports in _src_reports().items():
            for report in handler_reports:
                assert not report.effects.unresolved, (
                    engine, report.handler, report.effects.unresolved)


class TestOrderingRules:
    def test_all_three_rules_fire_on_bad_fixture(self, lint_fixture):
        result = lint_fixture("ordering_bad.py", rules=ORDER_RULES)
        assert {f.rule for f in result.unwaived} == set(ORDER_RULES)

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("ordering_good.py", rules=ORDER_RULES).clean

    def test_conflict_witness_is_the_raw_write_site(self, lint_fixture):
        result = lint_fixture("ordering_bad.py", rules=["effect-conflict"])
        [finding] = result.unwaived
        assert ".put()" in finding.message
        assert finding.extra["location"] == "store.slot"

    def test_src_is_certified(self):
        # The acceptance gate: repro order src/repro exits 0 — every
        # conflict waived with a justification, nothing unresolved.
        result = run_lint([str(REPO_ROOT / "src" / "repro")],
                          rule_ids=ORDER_RULES)
        assert result.clean, [f.format() for f in result.unwaived]
        assert result.waived  # the justified waivers are visible

    def test_src_waivers_carry_reasons(self):
        result = run_lint([str(REPO_ROOT / "src" / "repro")],
                          rule_ids=ORDER_RULES)
        for finding in result.waived:
            assert finding.waive_reason.strip()


class TestGoldenEffects:
    def test_effect_sets_are_pinned(self):
        # Regenerate with:
        #   repro order src/repro --effects-out \
        #       tests/devtools/golden_effects.json
        # and review the diff like a lockfile change: every altered line
        # is a handler gaining or losing an effect.
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        current = effects_document(_src_reports())
        assert current == golden, (
            "handler effect sets changed; review and regenerate the "
            "golden file (see comment above)")

    def test_every_dispatch_handler_pinned(self):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert golden["schema"] == "repro.effects/1"
        for engine in ("ProtocolNode", "LeaderProtocolNode",
                       "HybridProtocolNode"):
            handlers = golden["engines"][engine]
            assert handlers
            for info in handlers.values():
                assert info["msg_types"]
                assert info["effects"]
                assert info["unresolved"] == []


class TestFlaggedMessagePairs:
    def test_handler_conflicts_translate_to_msg_pairs(self):
        reports = analyze_engines(_contexts_from("ordering_bad.py"))
        pairs = flagged_message_pairs(reports)
        assert ("INV", "INV") in pairs  # _on_inv~_on_inv
        assert ("ACK", "INV") in pairs  # _on_ack~_on_inv

    def test_src_flags_are_nonempty_and_sorted(self):
        pairs = flagged_message_pairs(_src_reports())
        assert pairs == sorted(pairs)
        assert all(a <= b for a, b in pairs)
