"""Shared helpers for the reprolint test suite."""

from pathlib import Path

import pytest

from repro.devtools import lint_sources

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Virtual path fixtures are linted under, so src/repro-scoped rules
#: apply to them.
VIRTUAL_PATH = "src/repro/fixture_under_lint.py"


@pytest.fixture
def lint_fixture():
    def run(name, rules=None, virtual_path=VIRTUAL_PATH):
        source = (FIXTURES / name).read_text(encoding="utf-8")
        return lint_sources([(virtual_path, source)], rule_ids=rules)
    return run
