"""`repro lint` / `repro order` CLI: exit codes, --json schema, rule
listing, SARIF export, effect dumps."""

import json

import pytest

from repro.cli import main

BAD_ENGINE = '''\
class RacyEngine:
    _DISPATCH = {MsgType.INV: "_on_inv"}

    def __init__(self, store):
        self.store = store

    def _on_inv(self, message):
        self.store.put(message.key, message.value)
'''


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "rng-discipline" in capsys.readouterr().out

    def test_zero_when_findings_waived(self, tmp_path):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path)]) == 0

    def test_two_on_missing_path(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_two_on_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_two_on_bad_usage(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--no-such-flag"])
        assert exc.value.code == 2


class TestJsonOutput:
    def test_schema_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint_report/1"
        assert doc["clean"] is False
        assert doc["total"] == 1
        assert doc["counts"]["rng-discipline"] == 1
        finding = doc["findings"][0]
        assert set(finding) >= {"rule", "path", "line", "col",
                                "message", "waived"}

    def test_schema_on_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True and doc["findings"] == []

    def test_waived_findings_visible_in_json(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["waived"] == 1
        assert doc["findings"][0]["waive_reason"] == "fixture"


class TestRuleSelection:
    def test_rules_subset(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\ny = {}\n")
        assert main(["lint", str(tmp_path), "--rules",
                     "bare-except"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("rng-discipline", "wall-clock-ban",
                        "tracer-guard", "unordered-iteration",
                        "dispatch-completeness", "mutable-default",
                        "bare-except"):
            assert rule_id in out
        assert "guards:" in out

    def test_show_waived(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path), "--show-waived"]) == 0
        assert "[waived: fixture]" in capsys.readouterr().out


class TestSarif:
    def test_lint_sarif_document(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"rng-discipline", "effect-conflict",
                "unused-waiver"} <= rule_ids
        [result] = run["results"]
        assert result["ruleId"] == "rng-discipline"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert "suppressions" not in result

    def test_waived_findings_become_suppressions(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path), "--sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        [result] = doc["runs"][0]["results"]
        [suppression] = result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert suppression["justification"] == "fixture"

    def test_rule_descriptors_carry_rationale(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        by_id = {r["id"]: r for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        conflict = by_id["effect-conflict"]
        assert conflict["shortDescription"]["text"]
        assert "Guards:" in conflict["fullDescription"]["text"]


class TestOrderCommand:
    @staticmethod
    def _engine_dir(tmp_path, source=BAD_ENGINE):
        # The ordering rules are scoped to src/repro paths; mirror that
        # layout so the engine under test is in scope.
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "engine.py").write_text(source)
        return pkg

    def test_zero_on_clean_tree(self, tmp_path, capsys):
        pkg = self._engine_dir(tmp_path, source="x = 1\n")
        assert main(["order", str(pkg)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_one_on_racy_engine(self, tmp_path, capsys):
        pkg = self._engine_dir(tmp_path)
        assert main(["order", str(pkg)]) == 1
        assert "effect-conflict" in capsys.readouterr().out

    def test_only_ordering_rules_run(self, tmp_path):
        # rng-discipline violations are lint's business, not order's
        pkg = self._engine_dir(tmp_path, source="import random\n")
        assert main(["order", str(pkg)]) == 0

    def test_sarif_output(self, tmp_path, capsys):
        pkg = self._engine_dir(tmp_path)
        assert main(["order", str(pkg), "--sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-order"
        assert doc["runs"][0]["results"][0]["ruleId"] == "effect-conflict"

    def test_effects_dump(self, tmp_path, capsys):
        pkg = self._engine_dir(tmp_path)
        assert main(["order", str(pkg), "--effects", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.effects/1"
        handler = doc["engines"]["RacyEngine"]["_on_inv"]
        assert handler["msg_types"] == ["INV"]
        assert "w store.slot" in handler["effects"]

    def test_effects_out_writes_file(self, tmp_path, capsys):
        pkg = self._engine_dir(tmp_path)
        out = tmp_path / "golden.json"
        assert main(["order", str(pkg), "--effects-out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.effects/1"
        assert "wrote" in capsys.readouterr().out

    def test_two_on_missing_path(self, capsys):
        assert main(["order", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err
