"""`repro lint` CLI: exit codes, --json schema, rule listing."""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "rng-discipline" in capsys.readouterr().out

    def test_zero_when_findings_waived(self, tmp_path):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path)]) == 0

    def test_two_on_missing_path(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_two_on_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--rules", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_two_on_bad_usage(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--no-such-flag"])
        assert exc.value.code == 2


class TestJsonOutput:
    def test_schema_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.lint_report/1"
        assert doc["clean"] is False
        assert doc["total"] == 1
        assert doc["counts"]["rng-discipline"] == 1
        finding = doc["findings"][0]
        assert set(finding) >= {"rule", "path", "line", "col",
                                "message", "waived"}

    def test_schema_on_clean(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is True and doc["findings"] == []

    def test_waived_findings_visible_in_json(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["waived"] == 1
        assert doc["findings"][0]["waive_reason"] == "fixture"


class TestRuleSelection:
    def test_rules_subset(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\ny = {}\n")
        assert main(["lint", str(tmp_path), "--rules",
                     "bare-except"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("rng-discipline", "wall-clock-ban",
                        "tracer-guard", "unordered-iteration",
                        "dispatch-completeness", "mutable-default",
                        "bare-except"):
            assert rule_id in out
        assert "guards:" in out

    def test_show_waived(self, tmp_path, capsys):
        (tmp_path / "waived.py").write_text(
            "import random  # repro: lint-ok[rng-discipline] fixture\n")
        assert main(["lint", str(tmp_path), "--show-waived"]) == 0
        assert "[waived: fixture]" in capsys.readouterr().out
