"""dispatch-completeness: import-and-inspect over _DISPATCH tables."""

import sys

import pytest

from repro.core.messages import MsgType
from repro.devtools.rules.dispatch import ENGINE_SPECS, inspect_engine

from .conftest import FIXTURES


@pytest.fixture(autouse=True)
def fixtures_on_path():
    sys.path.insert(0, str(FIXTURES))
    try:
        yield
    finally:
        sys.path.remove(str(FIXTURES))
        for mod in ("dispatch_bad", "dispatch_good"):
            sys.modules.pop(mod, None)


class TestInspectEngine:
    def test_incomplete_table_fires(self):
        problems = inspect_engine("dispatch_bad", "BrokenEngine")
        assert len(problems) == 2
        missing = next(p for p in problems if "does not handle" in p)
        # Every unhandled member is named.
        assert "ACK" in missing and "VAL_P" in missing
        assert "INV" not in missing.split("member(s): ")[1]
        bad_method = next(p for p in problems if "not a method" in p)
        assert "_on_upd_typo" in bad_method

    def test_missing_table_fires(self):
        problems = inspect_engine("dispatch_bad", "TableFreeEngine")
        assert problems and "_DISPATCH" in problems[0]

    def test_complete_table_passes(self):
        assert inspect_engine("dispatch_good", "CompleteEngine") == []

    def test_coverage_via_mro(self):
        # HybridProtocolNode-style: the table lives on the base class.
        assert inspect_engine("dispatch_good", "InheritingEngine") == []

    def test_unimportable_module_is_a_problem_not_a_crash(self):
        problems = inspect_engine("no_such_module_anywhere", "X")
        assert problems and "cannot import" in problems[0]


class TestRealEngines:
    @pytest.mark.parametrize("module,cls", [
        (module, cls) for module, cls, _ in ENGINE_SPECS])
    def test_every_engine_handles_every_msgtype(self, module, cls):
        assert inspect_engine(module, cls) == []

    def test_specs_cover_all_engines_with_dispatch_paths(self):
        modules = {module for module, _, _ in ENGINE_SPECS}
        assert modules == {"repro.core.engine", "repro.hybrid.engine",
                           "repro.variants.leader"}

    def test_all_msgtypes_enumerated(self):
        # Table 3: the protocol message vocabulary the rule checks.
        assert {m.name for m in MsgType} == {
            "INV", "ACK", "ACK_C", "ACK_P", "VAL", "VAL_C", "VAL_P",
            "UPD", "INITX", "ENDX", "PERSIST"}


class TestProjectRuleWiring:
    def test_rule_fires_through_lint_engine(self):
        """Linting a file that *claims* to be core/engine.py triggers an
        import-and-inspect of the real ProtocolNode — which is clean."""
        from repro.devtools import lint_sources
        result = lint_sources(
            [("src/repro/core/engine.py", "class ProtocolNode: pass\n")],
            rule_ids=["dispatch-completeness"])
        # The real repro.core.engine.ProtocolNode is inspected (clean);
        # the source text itself is not what is checked.
        assert result.clean

    def test_findings_anchor_at_class_def(self, monkeypatch):
        import repro.devtools.rules.dispatch as dispatch_rule
        from repro.devtools import lint_sources
        monkeypatch.setattr(
            dispatch_rule, "ENGINE_SPECS",
            (("dispatch_bad", "BrokenEngine", "repro/core/engine.py"),))
        source = "# comment\nclass BrokenEngine:\n    pass\n"
        result = lint_sources([("src/repro/core/engine.py", source)],
                              rule_ids=["dispatch-completeness"])
        assert not result.clean
        assert all(f.line == 2 for f in result.unwaived)
        assert all(f.rule == "dispatch-completeness"
                   for f in result.unwaived)

    def test_waivable_at_class_def(self, monkeypatch):
        import repro.devtools.rules.dispatch as dispatch_rule
        from repro.devtools import lint_sources
        monkeypatch.setattr(
            dispatch_rule, "ENGINE_SPECS",
            (("dispatch_bad", "BrokenEngine", "repro/core/engine.py"),))
        source = ("# repro: lint-ok[dispatch-completeness] fixture engine is deliberately partial\n"
                  "class BrokenEngine:\n    pass\n")
        result = lint_sources([("src/repro/core/engine.py", source)],
                              rule_ids=["dispatch-completeness"])
        assert result.clean
        assert len(result.waived) == 2
