"""Engine mechanics: waivers, file walking, parse errors, reports."""

import json

from repro.devtools import (
    Finding,
    format_text,
    iter_python_files,
    lint_sources,
    to_json,
)
from repro.devtools.waivers import parse_waivers

BAD_IMPORT = "import random\n"


class TestWaivers:
    def test_same_line_waiver(self):
        src = "import random  # repro: lint-ok[rng-discipline] test shim\n"
        result = lint_sources([("src/repro/x.py", src)])
        assert result.clean
        assert len(result.waived) == 1
        assert result.waived[0].waive_reason == "test shim"

    def test_line_above_waiver(self):
        src = ("# repro: lint-ok[rng-discipline] test shim\n"
               "import random\n")
        assert lint_sources([("src/repro/x.py", src)]).clean

    def test_waiver_two_lines_up_does_not_match(self):
        src = ("# repro: lint-ok[rng-discipline] too far away\n"
               "\n"
               "import random\n")
        result = lint_sources([("src/repro/x.py", src)])
        rules = {f.rule for f in result.unwaived}
        assert "rng-discipline" in rules
        assert "unused-waiver" in rules

    def test_waiver_for_wrong_rule_does_not_match(self):
        src = "import random  # repro: lint-ok[bare-except] wrong rule\n"
        result = lint_sources([("src/repro/x.py", src)])
        assert {f.rule for f in result.unwaived} == {"rng-discipline",
                                                     "unused-waiver"}

    def test_multi_rule_waiver(self):
        src = ("import random  "
               "# repro: lint-ok[rng-discipline,wall-clock-ban] shared\n")
        result = lint_sources([("src/repro/x.py", src)])
        # rng waived; the wall-clock half never fires, but the waiver
        # as a whole was used so it is not reported unused.
        assert result.clean

    def test_waiver_without_reason_is_a_finding(self):
        src = "import random  # repro: lint-ok[rng-discipline]\n"
        result = lint_sources([("src/repro/x.py", src)])
        rules = {f.rule for f in result.unwaived}
        assert "waiver-syntax" in rules
        assert "rng-discipline" in rules  # malformed waivers don't waive

    def test_waiver_with_unknown_rule_is_a_finding(self):
        src = "import random  # repro: lint-ok[rng-disciplin] typo\n"
        result = lint_sources([("src/repro/x.py", src)])
        assert "waiver-syntax" in {f.rule for f in result.unwaived}

    def test_unused_waiver_is_a_finding(self):
        src = "x = 1  # repro: lint-ok[rng-discipline] nothing here\n"
        result = lint_sources([("src/repro/x.py", src)])
        assert [f.rule for f in result.unwaived] == ["unused-waiver"]

    def test_waiver_inside_docstring_is_not_live(self):
        src = ('"""Example: # repro: lint-ok[rng-discipline] doc"""\n'
               "x = 1\n")
        result = lint_sources([("src/repro/x.py", src)])
        assert result.clean
        assert len(parse_waivers(src)) == 0

    def test_rule_subset_skips_waiver_validation(self):
        src = "x = 1  # repro: lint-ok[rng-discipline] will be stale\n"
        result = lint_sources([("src/repro/x.py", src)],
                              rule_ids=["rng-discipline"])
        assert result.clean


class TestParseErrors:
    def test_unparseable_file_is_reported(self):
        result = lint_sources([("src/repro/x.py", "def broken(:\n")])
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.clean


class TestFileWalking:
    def test_skips_fixture_and_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "lint_fixtures").mkdir()
        (tmp_path / "pkg" / "lint_fixtures" / "bad.py").write_text(
            "import random\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x=1\n")
        files = iter_python_files([str(tmp_path)])
        assert [f.split("/")[-1] for f in files] == ["ok.py"]

    def test_explicit_file_overrides_skip(self, tmp_path):
        fixture_dir = tmp_path / "lint_fixtures"
        fixture_dir.mkdir()
        bad = fixture_dir / "bad.py"
        bad.write_text("import random\n")
        assert iter_python_files([str(bad)]) == [str(bad)]

    def test_missing_path_raises_usage_error(self):
        import pytest

        from repro.devtools import UsageError
        with pytest.raises(UsageError):
            iter_python_files(["definitely/not/here"])

    def test_walk_order_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n")
        first = iter_python_files([str(tmp_path)])
        second = iter_python_files([str(tmp_path)])
        assert first == second == sorted(first)


class TestReports:
    def test_text_report_pins_locations(self):
        result = lint_sources([("src/repro/x.py", BAD_IMPORT)])
        text = format_text(result)
        assert "src/repro/x.py:1:0: rng-discipline:" in text
        assert "1 finding(s)" in text

    def test_text_report_hides_waived_by_default(self):
        src = "import random  # repro: lint-ok[rng-discipline] shim\n"
        result = lint_sources([("src/repro/x.py", src)])
        assert "rng-discipline" not in format_text(result)
        assert "rng-discipline" in format_text(result, show_waived=True)

    def test_json_schema(self):
        result = lint_sources([("src/repro/x.py", BAD_IMPORT)])
        doc = json.loads(to_json(result))
        assert doc["schema"] == "repro.lint_report/1"
        assert doc["files"] == 1
        assert doc["total"] == 1
        assert doc["clean"] is False
        assert doc["counts"] == {"rng-discipline": 1}
        finding = doc["findings"][0]
        assert finding["rule"] == "rng-discipline"
        assert finding["path"] == "src/repro/x.py"
        assert finding["line"] == 1
        assert "message" in finding and "col" in finding
        assert finding["waived"] is False

    def test_json_clean_document(self):
        doc = json.loads(to_json(lint_sources([("src/repro/x.py",
                                                "x = 1\n")])))
        assert doc["clean"] is True
        assert doc["findings"] == []
        assert doc["rules"]  # the rules that ran are recorded

    def test_findings_sorted_and_stable(self):
        src = "import uuid\nimport random\n"
        result = lint_sources([("src/repro/x.py", src)])
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)

    def test_finding_waive_roundtrip(self):
        finding = Finding("r", "p.py", 3, 0, "msg")
        waived = finding.waive("because")
        assert waived.waived and waived.waive_reason == "because"
        assert not finding.waived  # original untouched (frozen)
