"""The dynamic half of the determinism certificate.

Record-mode transparency, seeded permutation determinism, the
delivery-only permutation scope, sweep byte-identity, static/dynamic
coverage cross-referencing, and the dynamic side of the injected
non-commuting mutation (hidden shared state across co-scheduled
handlers — its static twin is the ``ordering_bad`` fixture in
test_ordering.py).
"""

import pytest

from repro.core.model import Consistency, DdpModel, Persistency
from repro.core.replica import KeyReplica
from repro.devtools.sanitizer import (TieBatchSanitizer, cluster_digest,
                                      coverage, sweep, _run_once)

LIN_STRICT = DdpModel(Consistency.LINEARIZABLE, Persistency.STRICT)
EVT_EVT = DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL)


def _plain_digest(model, ops=20):
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig
    from repro.workload.ycsb import WORKLOADS

    config = ClusterConfig(servers=3, clients_per_server=2, seed=2021)
    cluster = Cluster(model, config=config, workload=WORKLOADS["A"])
    for client in cluster.clients:
        client.max_requests = ops
    cluster.start()
    cluster.sim.run()
    return cluster_digest(cluster)


class TestRecordMode:
    def test_recording_is_transparent(self):
        # A recorder (seed=None) must not perturb the run: the wave
        # loop processes batches in exactly the plain kernel's order.
        recorder = TieBatchSanitizer(seed=None)
        digest = _run_once(LIN_STRICT, 20, 3, 2, 2021, recorder)
        assert digest == _plain_digest(LIN_STRICT, ops=20)
        assert recorder.batches > 0
        assert recorder.permuted == 0

    def test_tie_stats_observed(self):
        recorder = TieBatchSanitizer(seed=None)
        _run_once(LIN_STRICT, 20, 3, 2, 2021, recorder)
        assert recorder.events_tied >= 2 * recorder.batches
        assert recorder.max_batch >= 2
        pairs = recorder.observed_pairs()
        assert pairs == sorted(pairs)
        assert any(a == "INV" or b == "INV" for a, b in pairs)


class TestPermutation:
    def test_same_seed_same_digest(self):
        first = _run_once(LIN_STRICT, 20, 3, 2, 2021,
                          TieBatchSanitizer(seed=7))
        second = _run_once(LIN_STRICT, 20, 3, 2, 2021,
                           TieBatchSanitizer(seed=7))
        assert first == second

    def test_permutations_actually_happen(self):
        permuter = TieBatchSanitizer(seed=1)
        _run_once(LIN_STRICT, 20, 3, 2, 2021, permuter)
        assert permuter.permuted > 0

    def test_only_deliveries_move(self):
        class Event:
            def __init__(self, kind):
                self.kind = kind
                self._value = None

        proc = [(1.0, 0, Event("process_start")),
                (1.0, 3, Event("timeout"))]
        deliveries = [(1.0, 1, Event("msg_delivery")),
                      (1.0, 2, Event("msg_delivery")),
                      (1.0, 4, Event("msg_delivery"))]
        batch = [proc[0], deliveries[0], deliveries[1], proc[1],
                 deliveries[2]]
        sanitizer = TieBatchSanitizer(seed=3)
        for _ in range(20):  # some shuffle must move something
            sanitizer.observe(1.0, list(batch))
        shuffled = list(batch)
        sanitizer.observe(1.0, shuffled)
        # non-delivery entries pinned to their original positions
        assert shuffled[0] is proc[0]
        assert shuffled[3] is proc[1]
        # delivery slots hold exactly the delivery entries
        assert {id(shuffled[i]) for i in (1, 2, 4)} == \
            {id(e) for e in deliveries}

    def test_byte_identity_on_real_models(self):
        for model in (LIN_STRICT, EVT_EVT):
            baseline = _run_once(model, 20, 3, 2, 2021,
                                 TieBatchSanitizer(seed=None))
            for seed in (1, 2):
                permuted = _run_once(model, 20, 3, 2, 2021,
                                     TieBatchSanitizer(seed=seed))
                assert permuted == baseline, (str(model), seed)


class TestSweep:
    def test_smoke(self):
        result = sweep(models=[LIN_STRICT, EVT_EVT], ops_per_client=15,
                       seeds=(1,))
        assert result.ok
        assert len(result.cells) == 2
        doc = result.to_dict()
        assert doc["schema"] == "repro.order_sweep/1"
        assert doc["ok"] is True
        assert doc["ops_per_client"] == 15
        for cell in doc["cells"]:
            assert cell["batches"] > 0
            assert list(cell["digests"]) == ["1"]

    def test_coverage_cross_reference(self):
        result = sweep(models=[LIN_STRICT], ops_per_client=15, seeds=(1,))
        observed = result.observed_pairs()
        assert observed
        exercised_pair = observed[0]
        cover = coverage([exercised_pair, ("ZZZ", "ZZZ")], result)
        assert list(exercised_pair) in cover["exercised"]
        assert ["ZZZ", "ZZZ"] in cover["uncovered"]
        assert len(cover["flagged"]) == 2


class TestInjectedMutation:
    def test_hidden_shared_state_is_caught(self, monkeypatch):
        # The dynamic twin of the ordering_bad fixture: co-scheduled
        # handlers share an unsynchronized global (sequence allocation
        # inside apply), so handler start order leaks into protocol
        # state.  The static pass flags this shape as effect-conflict;
        # the sanitizer must observe real divergence.
        def make_stamped():
            counter = {"n": 0}

            def stamped_apply(self, version, value):
                counter["n"] += 1
                if version <= self.applied_version:
                    return False
                self.applied_version = version
                self.applied_value = (value, counter["n"])
                self.condition.notify()
                if self.observer is not None:
                    self.observer("apply", self.key, version)
                return True
            return stamped_apply

        monkeypatch.setattr(KeyReplica, "apply", make_stamped())
        baseline = _run_once(LIN_STRICT, 30, 3, 2, 2021,
                             TieBatchSanitizer(seed=None))
        monkeypatch.setattr(KeyReplica, "apply", make_stamped())
        permuted = _run_once(LIN_STRICT, 30, 3, 2, 2021,
                             TieBatchSanitizer(seed=1))
        assert permuted != baseline

    def test_divergence_maps_to_flagged_pair(self, monkeypatch):
        # The pair the mutation races on (INV~INV: concurrent applies)
        # must be among the ties the diverging run observed, so the
        # report can point back at the static finding.
        permuter = TieBatchSanitizer(seed=1)
        _run_once(LIN_STRICT, 30, 3, 2, 2021, permuter)
        assert ("INV", "INV") in permuter.observed_pairs()


@pytest.mark.slow
class TestFullMatrix:
    def test_all_25_models_byte_identical(self):
        result = sweep(ops_per_client=30, seeds=(1, 2, 3, 4))
        assert result.ok, [(c.model, c.diverged) for c in result.diverged]
        assert len(result.cells) == 25
