"""Tests for the NVM log, recovery algorithms, and checkers."""

import pytest

from repro.core.replica import ZERO_VERSION
from repro.recovery.checker import (
    check_completed_writes_recovered,
    check_monotonic_reads,
    check_read_values_recovered,
    check_scope_atomicity,
)
from repro.recovery.log import NvmLog
from repro.recovery.recovery import (
    recover_latest,
    recover_majority,
    recovery_divergence,
)

NODES = [0, 1, 2]


@pytest.fixture
def log():
    return NvmLog(NODES)


class TestNvmLog:
    def test_record_and_read_back(self, log):
        log.record(0, key=1, version=(1, 0), value="a")
        entry = log.durable_entry(0, 1)
        assert entry.value == "a"
        assert log.durable_entry(1, 1) is None

    def test_newer_version_wins(self, log):
        log.record(0, 1, (2, 0), "new")
        log.record(0, 1, (1, 0), "old-late-arrival")
        assert log.durable_entry(0, 1).value == "new"

    def test_scope_entries_staged_until_commit(self, log):
        log.record(0, 1, (1, 0), "scoped", scope_id=9)
        assert log.durable_entry(0, 1) is None       # partial scope
        log.commit_scope(0, 9)
        assert log.durable_entry(0, 1).value == "scoped"
        assert log.is_scope_committed(0, 9)

    def test_uncommitted_scope_does_not_clobber_older_commit(self, log):
        log.record(0, 1, (1, 0), "committed")
        log.record(0, 1, (2, 0), "partial", scope_id=5)
        # Crash before scope 5 commits: the old committed value survives.
        assert log.durable_entry(0, 1).value == "committed"

    def test_durable_keys(self, log):
        log.record(0, 1, (1, 0), "a")
        log.record(0, 2, (1, 0), "b", scope_id=3)
        assert log.durable_keys(0) == [1]

    def test_durable_version_default(self, log):
        assert log.durable_version(0, 99) == ZERO_VERSION


class TestRecovery:
    def test_latest_takes_max_across_nodes(self, log):
        log.record(0, 1, (1, 0), "old")
        log.record(1, 1, (2, 0), "new")
        recovered = recover_latest(log, NODES)
        assert recovered.value_of(1) == "new"
        assert recovered.version_of(1) == (2, 0)

    def test_latest_empty_log(self, log):
        recovered = recover_latest(log, NODES)
        assert len(recovered) == 0
        assert recovered.version_of(5) == ZERO_VERSION

    def test_majority_prefers_quorum_version(self, log):
        log.record(0, 1, (1, 0), "quorum")
        log.record(1, 1, (1, 0), "quorum")
        log.record(2, 1, (9, 0), "lone-unacked")
        recovered = recover_majority(log, NODES)
        assert recovered.value_of(1) == "quorum"

    def test_majority_falls_back_to_latest(self, log):
        log.record(0, 1, (1, 0), "a")
        log.record(1, 1, (2, 0), "b")
        recovered = recover_majority(log, NODES)
        assert recovered.value_of(1) == "b"

    def test_majority_of_newer_wins_over_minority(self, log):
        log.record(0, 1, (2, 0), "new")
        log.record(1, 1, (2, 0), "new")
        log.record(2, 1, (1, 0), "old")
        recovered = recover_majority(log, NODES)
        assert recovered.version_of(1) == (2, 0)

    def test_divergence_counts_distinct_versions(self, log):
        log.record(0, 1, (1, 0), "a")
        log.record(1, 1, (1, 0), "a")
        log.record(2, 1, (2, 0), "b")
        log.record(0, 2, (1, 0), "x")
        log.record(1, 2, (1, 0), "x")
        log.record(2, 2, (1, 0), "x")
        divergence = recovery_divergence(log, NODES)
        assert divergence[1] == 2
        assert divergence[2] == 1


class TestCheckers:
    def test_completed_writes_recovered_pass(self, log):
        log.record(0, 1, (3, 0), "v")
        recovered = recover_latest(log, NODES)
        result = check_completed_writes_recovered(recovered, [(1, (3, 0))])
        assert result.ok

    def test_completed_writes_recovered_fail(self, log):
        log.record(0, 1, (1, 0), "v")
        recovered = recover_latest(log, NODES)
        result = check_completed_writes_recovered(recovered, [(1, (5, 0))])
        assert not result.ok
        assert "lost" in result.violations[0]

    def test_read_values_recovered_ignores_initial_reads(self, log):
        recovered = recover_latest(log, NODES)
        result = check_read_values_recovered(recovered, [(1, ZERO_VERSION)])
        assert result.ok

    def test_read_values_recovered_fail(self, log):
        recovered = recover_latest(log, NODES)
        result = check_read_values_recovered(recovered, [(1, (2, 0))])
        assert not result.ok

    def test_scope_atomicity_committed_complete(self, log):
        log.record(0, 1, (1, 0), "a", scope_id=7)
        log.record(0, 2, (1, 0), "b", scope_id=7)
        log.commit_scope(0, 7)
        result = check_scope_atomicity(
            log, [0], {7: [(1, (1, 0)), (2, (1, 0))]})
        assert result.ok

    def test_scope_atomicity_partial_discarded(self, log):
        log.record(0, 1, (1, 0), "a", scope_id=7)
        # Crash before commit: scope is simply not recoverable — that is
        # legal (all-or-nothing), so the checker passes.
        result = check_scope_atomicity(
            log, [0], {7: [(1, (1, 0)), (2, (1, 0))]})
        assert result.ok
        assert log.durable_entry(0, 1) is None

    def test_monotonic_reads_pass(self):
        result = check_monotonic_reads([(1, (1, 0)), (1, (2, 0)), (2, (1, 0))])
        assert result.ok

    def test_monotonic_reads_fail(self):
        result = check_monotonic_reads([(1, (2, 0)), (1, (1, 0))])
        assert not result.ok
        assert result.violations
