"""End-to-end crash tests: each DDP model's durability contract.

A small cluster runs a scripted workload; the whole cluster then loses
its volatile state ("a failure of the entire system", the paper's worst
case); recovery runs from the NVM images; and the model's Table 2/4
durability contract is checked:

* Strict / <Linearizable|Transactional, Synchronous>: completed writes
  are never lost (non-stale reads across the crash).
* Read-Enforced persistency: every value *read* before the crash is
  recoverable (unread writes may be lost).
* Scope: committed scopes are recovered all-or-nothing.
* <Causal, Synchronous>: reads return persisted versions, so read
  values are recoverable.
* Eventual: no guarantee — the test only checks recovery runs.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.recovery.checker import (
    check_completed_writes_recovered,
    check_read_values_recovered,
    check_scope_atomicity,
)
from repro.recovery.recovery import (
    recover_latest,
    recover_majority,
    recovery_divergence,
)


def build(consistency, persistency):
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None))
    cluster.start()
    return cluster


def run_to_completion(cluster, generator):
    return cluster.sim.run_until_complete(cluster.sim.process(generator))


class ScriptedClient:
    """Drives ops on one engine, recording completed writes and reads."""

    def __init__(self, cluster, node=0, client_id=0):
        self.cluster = cluster
        self.engine = cluster.engines[node]
        self.ctx = ClientContext(client_id, node)
        self.completed_writes = []   # (key, version)
        self.observed_reads = []     # (key, version)

    def write(self, key, value):
        run_to_completion(self.cluster,
                          self.engine.client_write(self.ctx, key, value))
        replica = self.engine.replicas.get(key)
        self.completed_writes.append((key, replica.applied_version))

    def read(self, key):
        value = run_to_completion(self.cluster,
                                  self.engine.client_read(self.ctx, key))
        replica = self.engine.replicas.get(key)
        if self.engine.ppolicy.read_returns_persisted \
                and not self.engine.cpolicy.uses_inv:
            version = replica.persisted_version
        else:
            version = replica.applied_version
        self.observed_reads.append((key, version))
        return value


@pytest.mark.parametrize("consistency,persistency", [
    (C.LINEARIZABLE, P.SYNCHRONOUS),
    (C.LINEARIZABLE, P.STRICT),
    (C.READ_ENFORCED, P.STRICT),
    (C.EVENTUAL, P.STRICT),
])
def test_completed_writes_survive_full_crash(consistency, persistency):
    cluster = build(consistency, persistency)
    client = ScriptedClient(cluster)
    for i in range(20):
        client.write(i % 7, f"value-{i}")
    cluster.crash_all()
    recovered = recover_latest(cluster.nvm_log, range(3))
    result = check_completed_writes_recovered(recovered,
                                              client.completed_writes)
    assert result.ok, result.violations


@pytest.mark.parametrize("consistency", [C.LINEARIZABLE, C.READ_ENFORCED,
                                         C.CAUSAL, C.EVENTUAL])
def test_read_enforced_persistency_read_values_survive(consistency):
    cluster = build(consistency, P.READ_ENFORCED)
    client = ScriptedClient(cluster)
    for i in range(12):
        client.write(i % 5, f"v{i}")
        client.read(i % 5)
    cluster.crash_all()
    recovered = recover_latest(cluster.nvm_log, range(3))
    result = check_read_values_recovered(recovered, client.observed_reads)
    assert result.ok, result.violations


def test_causal_synchronous_read_values_survive():
    """<Causal, Synchronous>: reads return only persisted versions, so
    everything ever read is recoverable even though recent writes may
    not be."""
    cluster = build(C.CAUSAL, P.SYNCHRONOUS)
    client = ScriptedClient(cluster)
    for i in range(15):
        client.write(i % 4, f"v{i}")
        client.read(i % 4)
    cluster.crash_all()
    recovered = recover_latest(cluster.nvm_log, range(3))
    result = check_read_values_recovered(recovered, client.observed_reads)
    assert result.ok, result.violations


def test_eventual_eventual_may_lose_unpersisted_writes():
    """<Eventual, Eventual> offers no durability: a crash immediately
    after writes loses them (lazy persists never ran)."""
    cluster = build(C.EVENTUAL, P.EVENTUAL)
    client = ScriptedClient(cluster)
    client.write(1, "volatile-only")
    cluster.crash_all()   # before the lazy persist delay elapses
    recovered = recover_latest(cluster.nvm_log, range(3))
    assert recovered.version_of(1) == (0, -1)


def test_scope_atomicity_across_crash():
    cluster = build(C.LINEARIZABLE, P.SCOPE)
    client = ScriptedClient(cluster)
    # Scope 1: complete and persisted.
    client.write(1, "a")
    client.write(2, "b")
    first_scope = client.ctx.current_scope_id
    first_writes = list(client.ctx.scope_writes)
    run_to_completion(cluster,
                      client.engine.client_persist_scope(client.ctx))
    # Scope 2: written but never persisted — lost on the crash.
    client.write(3, "c")
    second_writes = [(3, cluster.engines[0].replicas.get(3).applied_version)]
    cluster.crash_all()

    result = check_scope_atomicity(cluster.nvm_log, range(3),
                                   {first_scope: first_writes})
    assert result.ok, result.violations
    recovered = recover_latest(cluster.nvm_log, range(3))
    assert recovered.value_of(1) == "a"
    assert recovered.value_of(2) == "b"
    for key, version in second_writes:
        assert recovered.version_of(key) < version


def test_strict_models_have_no_recovery_divergence():
    """Section 9: strict models leave every node with the same
    persistent view, so recovery is trivial."""
    cluster = build(C.LINEARIZABLE, P.STRICT)
    client = ScriptedClient(cluster)
    for i in range(10):
        client.write(i, f"v{i}")
    cluster.crash_all()
    divergence = recovery_divergence(cluster.nvm_log, range(3))
    assert all(count == 1 for count in divergence.values())


def test_weak_models_can_diverge_and_majority_recovery_handles_it():
    cluster = build(C.EVENTUAL, P.SYNCHRONOUS)
    client = ScriptedClient(cluster)
    client.write(1, "x")
    # Crash immediately: the coordinator persisted (Synchronous persists
    # at the local visibility point) but followers may not have yet.
    cluster.crash_all()
    majority = recover_majority(cluster.nvm_log, range(3))
    latest = recover_latest(cluster.nvm_log, range(3))
    # Majority recovery never resurrects more than latest knows about.
    for key in majority.entries:
        assert majority.version_of(key) <= latest.version_of(key)


def test_single_node_crash_leaves_cluster_running():
    cluster = build(C.CAUSAL, P.SYNCHRONOUS)
    client = ScriptedClient(cluster, node=0)
    client.write(1, "before")
    cluster.crash_node(2)
    # Writes through a healthy coordinator still complete (UPD-based
    # causal protocol needs no ACKs from the dead node).
    client.write(2, "after")
    assert cluster.engines[0].replicas.get(2).applied_value == "after"
