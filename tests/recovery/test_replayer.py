"""Tests for the simulated recovery process."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.context import ClientContext
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.recovery.replayer import RecoveryReplayer


def crashed_cluster(consistency, persistency, writes=30):
    cluster = Cluster(DdpModel(consistency, persistency),
                      config=ClusterConfig(servers=3, clients_per_server=0,
                                           store_type=None))
    cluster.start()
    engine = cluster.engines[0]
    ctx = ClientContext(0, 0)
    for i in range(writes):
        cluster.sim.run_until_complete(
            cluster.sim.process(engine.client_write(ctx, i, f"v{i}")))
    cluster.crash_all()
    return cluster


class TestReplayer:
    def test_scan_time_scales_with_image_size(self):
        small = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.SYNCHRONOUS, writes=5)).simulate()
        large = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.SYNCHRONOUS, writes=60)).simulate()
        assert large.scan_ns > small.scan_ns
        assert large.total_keys > small.total_keys

    def test_strict_recovery_has_no_divergence(self):
        report = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.STRICT)).simulate()
        assert report.divergent_keys == 0
        assert report.divergence_fraction == 0.0

    def test_weak_models_pay_more_reconciliation(self):
        """Eventual persistency diverges (mid-flight lazy persists), and
        the voting strategy costs an extra round."""
        strict = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.STRICT)).simulate("latest")
        weak_cluster = crashed_cluster(C.EVENTUAL, P.SYNCHRONOUS)
        weak = RecoveryReplayer(weak_cluster).simulate("latest")
        weak_voting = RecoveryReplayer(weak_cluster).simulate("majority")
        assert weak_voting.reconcile_ns > weak.reconcile_ns
        assert strict.reconcile_ns <= weak_voting.reconcile_ns

    def test_recovered_state_returned(self):
        report = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.SYNCHRONOUS, writes=10)).simulate()
        assert len(report.state) == 10
        assert report.state.value_of(3) == "v3"

    def test_total_is_scan_plus_reconcile(self):
        report = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.SYNCHRONOUS)).simulate()
        assert report.total_ns == pytest.approx(
            report.scan_ns + report.reconcile_ns)

    def test_unknown_strategy_rejected(self):
        replayer = RecoveryReplayer(crashed_cluster(
            C.LINEARIZABLE, P.SYNCHRONOUS, writes=2))
        with pytest.raises(ValueError):
            replayer.simulate("quorum-intersection")
