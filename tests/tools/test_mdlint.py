"""The markdown link checker catches what it claims — and the repo's
own docs pass it (the same invocation CI runs)."""

import importlib.util
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "mdlint", ROOT / "tools" / "mdlint.py")
mdlint = importlib.util.module_from_spec(spec)
sys.modules.setdefault("mdlint", mdlint)
spec.loader.exec_module(mdlint)


class TestSlugs:
    @pytest.mark.parametrize("heading,slug", [
        ("Operator's handbook", "operators-handbook"),
        ("The 5×5 model matrix", "the-55-model-matrix"),
        ("Run report (`repro.run_report/6`)",
         "run-report-reprorun_report6"),
        ("`repro run` — simulate one model",
         "repro-run--simulate-one-model"),
        ("**Bold** and _tail_", "bold-and-_tail_"),
        ("CamelCase & symbols!?", "camelcase--symbols"),
    ])
    def test_github_rules(self, heading, slug):
        assert mdlint.github_slug(heading, {}) == slug

    def test_duplicates_suffixed(self):
        seen = {}
        assert mdlint.github_slug("Same", seen) == "same"
        assert mdlint.github_slug("Same", seen) == "same-1"
        assert mdlint.github_slug("Same", seen) == "same-2"

    def test_headings_inside_fences_ignored(self):
        text = "# Real\n```\n# not a heading\n```\n## Also real\n"
        assert mdlint.heading_slugs(text) == ["real", "also-real"]


class TestChecker:
    def write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def check(self, *paths):
        checker = mdlint.Checker()
        for path in paths:
            checker.check_file(path)
        return checker.errors

    def test_clean_cross_file_link_and_anchor(self, tmp_path):
        self.write(tmp_path, "other.md", "# Target Heading\n")
        doc = self.write(tmp_path, "doc.md",
                         "[ok](other.md) and "
                         "[anchored](other.md#target-heading) and "
                         "[external](https://example.com/x)\n")
        assert self.check(doc) == []

    def test_missing_file_reported_with_line(self, tmp_path):
        doc = self.write(tmp_path, "doc.md", "\n\n[bad](missing.md)\n")
        (error,) = self.check(doc)
        assert "doc.md:3" in error and "missing.md" in error

    def test_bad_anchor_reported(self, tmp_path):
        self.write(tmp_path, "other.md", "# Only Heading\n")
        doc = self.write(tmp_path, "doc.md", "[bad](other.md#nope)\n")
        (error,) = self.check(doc)
        assert "nope" in error

    def test_same_file_anchor(self, tmp_path):
        doc = self.write(tmp_path, "doc.md",
                         "# A Heading\n[up](#a-heading)\n[bad](#nope)\n")
        (error,) = self.check(doc)
        assert "#nope" in error

    def test_links_in_code_blocks_ignored(self, tmp_path):
        doc = self.write(tmp_path, "doc.md",
                         "```\n[fake](nowhere.md)\n```\n"
                         "inline `[fake](nowhere.md)` too\n")
        assert self.check(doc) == []

    def test_reference_style_links(self, tmp_path):
        self.write(tmp_path, "other.md", "# H\n")
        doc = self.write(tmp_path, "doc.md",
                         "[good][a] [dangling][b]\n\n[a]: other.md\n")
        (error,) = self.check(doc)
        assert "[b]" in error

    def test_anchor_into_non_markdown_skipped(self, tmp_path):
        self.write(tmp_path, "code.py", "x = 1\n")
        doc = self.write(tmp_path, "doc.md", "[src](code.py#L1)\n")
        assert self.check(doc) == []


def test_repository_docs_are_clean(capsys):
    """The gate CI enforces: every *.md at the root and under docs/."""
    targets = [str(p) for p in sorted(ROOT.glob("*.md"))]
    targets.append(str(ROOT / "docs"))
    assert mdlint.main(targets) == 0, capsys.readouterr().out
