"""Tests for deterministic RNG streams and tracing."""

from repro.sim.rng import SeededStream
from repro.sim.trace import NullTracer, Tracer


class TestSeededStream:
    def test_same_seed_same_draws(self):
        a = SeededStream(42)
        b = SeededStream(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededStream(1)
        b = SeededStream(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_stable(self):
        root1 = SeededStream(7)
        root2 = SeededStream(7)
        assert (root1.fork("child").random()
                == root2.fork("child").random())

    def test_fork_isolation(self):
        """Draws from one fork do not shift a sibling fork's stream."""
        root1 = SeededStream(7)
        fork_a1 = root1.fork("a")
        _ = [fork_a1.random() for _ in range(100)]
        value_b1 = root1.fork("b").random()

        root2 = SeededStream(7)
        value_b2 = root2.fork("b").random()
        assert value_b1 == value_b2

    def test_fork_names_compose(self):
        stream = SeededStream(3).fork("x").fork("y")
        assert stream.name == "root/x/y"

    def test_helpers_in_range(self):
        stream = SeededStream(11)
        for _ in range(100):
            assert 0 <= stream.randint(0, 9) <= 9
            assert 1.0 <= stream.uniform(1.0, 2.0) <= 2.0
        assert stream.choice([1, 2, 3]) in (1, 2, 3)

    def test_state_roundtrip(self):
        stream = SeededStream(5)
        state = stream.getstate()
        first = stream.random()
        stream.setstate(state)
        assert stream.random() == first


class TestTracer:
    def test_records_and_counts(self):
        tracer = Tracer()
        tracer.emit(1.0, "send", node=0, msg="INV")
        tracer.emit(2.0, "recv", node=1, msg="INV")
        tracer.emit(3.0, "send", node=1, msg="ACK")
        assert len(tracer) == 3
        assert tracer.count("send") == 2
        assert [r.time for r in tracer.by_category("recv")] == [2.0]

    def test_category_filter(self):
        tracer = Tracer(categories=["persist"])
        tracer.emit(1.0, "send", node=0)
        tracer.emit(2.0, "persist", node=0)
        assert len(tracer) == 1

    def test_dump_format(self):
        tracer = Tracer()
        tracer.emit(1.5, "send", node=0, key=7)
        dump = tracer.dump()
        assert "send" in dump and "key=7" in dump and "n0" in dump

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.emit(1.0, "anything", node=3)
        assert len(tracer) == 0
        assert tracer.dump() == ""
        assert tracer.count("anything") == 0
        assert not tracer.enabled
