"""Tests for deterministic RNG streams and tracing."""

from repro.sim.rng import SeededStream
from repro.sim.trace import NullTracer, Tracer


class TestSeededStream:
    def test_same_seed_same_draws(self):
        a = SeededStream(42)
        b = SeededStream(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededStream(1)
        b = SeededStream(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_stable(self):
        root1 = SeededStream(7)
        root2 = SeededStream(7)
        assert (root1.fork("child").random()
                == root2.fork("child").random())

    def test_fork_isolation(self):
        """Draws from one fork do not shift a sibling fork's stream."""
        root1 = SeededStream(7)
        fork_a1 = root1.fork("a")
        _ = [fork_a1.random() for _ in range(100)]
        value_b1 = root1.fork("b").random()

        root2 = SeededStream(7)
        value_b2 = root2.fork("b").random()
        assert value_b1 == value_b2

    def test_fork_names_compose(self):
        stream = SeededStream(3).fork("x").fork("y")
        assert stream.name == "root/x/y"

    def test_helpers_in_range(self):
        stream = SeededStream(11)
        for _ in range(100):
            assert 0 <= stream.randint(0, 9) <= 9
            assert 1.0 <= stream.uniform(1.0, 2.0) <= 2.0
        assert stream.choice([1, 2, 3]) in (1, 2, 3)

    def test_state_roundtrip(self):
        stream = SeededStream(5)
        state = stream.getstate()
        first = stream.random()
        stream.setstate(state)
        assert stream.random() == first


class TestTracer:
    def test_records_and_counts(self):
        tracer = Tracer()
        tracer.emit(1.0, "send", node=0, msg="INV")
        tracer.emit(2.0, "recv", node=1, msg="INV")
        tracer.emit(3.0, "send", node=1, msg="ACK")
        assert len(tracer) == 3
        assert tracer.count("send") == 2
        assert [r.time for r in tracer.by_category("recv")] == [2.0]

    def test_category_filter(self):
        tracer = Tracer(categories=["persist"])
        tracer.emit(1.0, "send", node=0)
        tracer.emit(2.0, "persist", node=0)
        assert len(tracer) == 1

    def test_dump_format(self):
        tracer = Tracer()
        tracer.emit(1.5, "send", node=0, key=7)
        dump = tracer.dump()
        assert "send" in dump and "key=7" in dump and "n0" in dump

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_span_records(self):
        tracer = Tracer()
        tracer.emit(10.0, "read_stall", node=0, dur=4.0, key=3)
        tracer.span(20.0, 26.0, "write_stall", node=1)
        first, second = tracer.records
        assert first.phase == "X" and first.dur == 4.0
        assert first.start == 6.0
        assert first.details == {"key": 3}
        assert second.dur == 6.0 and second.time == 26.0
        assert "dur=4ns" in first.format()

    def test_instant_records_have_no_duration(self):
        tracer = Tracer()
        tracer.emit(5.0, "msg_send", node=0)
        (record,) = tracer.records
        assert record.phase == "i" and record.dur == 0.0
        assert record.start == record.time

    def test_explicit_phase_override(self):
        tracer = Tracer()
        tracer.emit(1.0, "queue_depth", node=0, phase="C", depth=12)
        assert tracer.records[0].phase == "C"

    def test_max_records_cap_keeps_head_and_counts_drops(self):
        tracer = Tracer(max_records=3)
        for i in range(10):
            tracer.emit(float(i), "send", node=0)
        assert len(tracer) == 3
        assert [r.time for r in tracer.records] == [0.0, 1.0, 2.0]
        assert tracer.dropped == 7

    def test_ring_mode_keeps_tail_and_counts_drops(self):
        tracer = Tracer(max_records=3, ring=True)
        for i in range(10):
            tracer.emit(float(i), "send", node=0)
        assert len(tracer) == 3
        assert [r.time for r in tracer.records] == [7.0, 8.0, 9.0]
        assert tracer.dropped == 7

    def test_cap_not_reached_drops_nothing(self):
        for ring in (False, True):
            tracer = Tracer(max_records=5, ring=ring)
            tracer.emit(1.0, "send")
            assert tracer.dropped == 0
            assert len(tracer) == 1

    def test_invalid_cap_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_clear_resets_dropped(self):
        tracer = Tracer(max_records=1)
        tracer.emit(1.0, "a")
        tracer.emit(2.0, "b")
        assert tracer.dropped == 1
        tracer.clear()
        assert tracer.dropped == 0 and len(tracer) == 0

    def test_categories_counts(self):
        tracer = Tracer()
        tracer.emit(1.0, "send")
        tracer.emit(2.0, "send")
        tracer.emit(3.0, "recv")
        assert tracer.categories() == {"send": 2, "recv": 1}

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.emit(1.0, "anything", node=3)
        assert len(tracer) == 0
        assert tracer.dump() == ""
        assert tracer.count("anything") == 0
        assert not tracer.enabled
