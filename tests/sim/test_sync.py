"""Unit tests for simulation synchronization primitives."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.sync import Condition, Latch, Resource, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, 0)

    def test_immediate_grant_under_capacity(self, sim):
        resource = Resource(sim, 2)
        log = []

        def user(name):
            yield resource.acquire()
            log.append((sim.now, name, "in"))
            yield sim.timeout(10)
            resource.release()

        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert [(t, n) for t, n, _ in log] == [(0.0, "a"), (0.0, "b")]

    def test_fifo_queueing(self, sim):
        resource = Resource(sim, 1)
        order = []

        def user(name, hold):
            yield resource.acquire()
            order.append(name)
            yield sim.timeout(hold)
            resource.release()

        sim.process(user("first", 5))
        sim.process(user("second", 5))
        sim.process(user("third", 5))
        sim.run()
        assert order == ["first", "second", "third"]
        assert sim.now == 15.0

    def test_release_idle_rejected(self, sim):
        resource = Resource(sim, 1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_use_helper(self, sim):
        resource = Resource(sim, 1)

        def user():
            yield from resource.use(7)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert sim.now == 14.0
        assert resource.in_use == 0

    def test_telemetry(self, sim):
        resource = Resource(sim, 1)

        def user():
            yield from resource.use(1)

        for _ in range(3):
            sim.process(user())
        sim.run()
        assert resource.total_acquires == 3
        assert resource.peak_queue_len == 2


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        results = []

        def getter():
            item = yield store.get()
            results.append(item)

        store.put("x")
        sim.process(getter())
        sim.run()
        assert results == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def getter():
            item = yield store.get()
            results.append((sim.now, item))

        def putter():
            yield sim.timeout(5)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert results == [(5.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        results = []

        def getter():
            while True:
                item = yield store.get()
                results.append(item)
                if item == 3:
                    return

        for i in (1, 2, 3):
            store.put(i)
        sim.process(getter())
        sim.run()
        assert results == [1, 2, 3]

    def test_len_and_peak(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peak_len == 2


class TestLatch:
    def test_zero_count_is_immediately_done(self, sim):
        latch = Latch(sim, 0)
        assert latch.event.triggered

    def test_counts_down(self, sim):
        latch = Latch(sim, 3)
        done = []

        def waiter():
            yield latch.wait()
            done.append(sim.now)

        def arriver():
            for _ in range(3):
                yield sim.timeout(2)
                latch.arrive()

        sim.process(waiter())
        sim.process(arriver())
        sim.run()
        assert done == [6.0]

    def test_overrun_rejected(self, sim):
        latch = Latch(sim, 1)
        latch.arrive()
        with pytest.raises(RuntimeError):
            latch.arrive()

    def test_negative_count_rejected(self, sim):
        with pytest.raises(ValueError):
            Latch(sim, -1)


class TestCondition:
    def test_immediate_when_true(self, sim):
        condition = Condition(sim)
        state = {"ready": True}
        done = []

        def waiter():
            yield condition.wait_for(lambda: state["ready"])
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done == [0.0]

    def test_wakes_on_notify(self, sim):
        condition = Condition(sim)
        state = {"value": 0}
        done = []

        def waiter():
            yield condition.wait_for(lambda: state["value"] >= 2)
            done.append(sim.now)

        def mutator():
            for _ in range(2):
                yield sim.timeout(3)
                state["value"] += 1
                condition.notify()

        sim.process(waiter())
        sim.process(mutator())
        sim.run()
        assert done == [6.0]

    def test_multiple_waiters_selective_wake(self, sim):
        condition = Condition(sim)
        state = {"value": 0}
        done = []

        def waiter(threshold):
            yield condition.wait_for(lambda: state["value"] >= threshold)
            done.append((sim.now, threshold))

        def mutator():
            for _ in range(3):
                yield sim.timeout(1)
                state["value"] += 1
                condition.notify()

        sim.process(waiter(1))
        sim.process(waiter(3))
        sim.process(mutator())
        sim.run()
        assert done == [(1.0, 1), (3.0, 3)]

    def test_waiter_count(self, sim):
        condition = Condition(sim)

        def waiter():
            yield condition.wait_for(lambda: False)

        sim.process(waiter())
        sim.run(until=1)
        assert condition.waiter_count == 1
