"""Attribution counters for kernel paths the profiler newly exposes.

Micro-simulations with hand-traceable schedules pin *exact* counter
values: event-kind buckets, composite (`AllOf`/`AnyOf`) and defused
events, same-timestamp tie-batches, interrupt-driven resumes, and the
trampoline fast path.  A kernel refactor that changes any of these
numbers changes scheduling — these tests make that visible before the
byte-identity suites fail mysteriously.
"""

import pytest

from repro.obs import KernelProfile
from repro.sim.engine import Interrupt, Simulator


def _attached():
    sim = Simulator()
    profile = KernelProfile()
    profile.attach(sim)
    return sim, profile


def _kind_counts(profile):
    return {kind: stats[0] for kind, stats in profile.by_event_kind.items()}


class TestEventKindAttribution:
    def test_all_of_composite_pinned_counts(self):
        """3 same-delay timeouts under an AllOf: 6 pops total —
        process_start, 3 timeouts, the composite, process_end — with the
        5 t=5 pops forming one tie-batch."""
        sim, profile = _attached()

        def waiter():
            yield sim.all_of([sim.timeout(5.0) for _ in range(3)])

        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        assert profile.events_processed == 6
        assert _kind_counts(profile) == {
            "process_start": 1, "timeout": 3,
            "composite": 1, "process_end": 1,
        }
        assert profile.tie_batch_hist == {1: 1, 5: 1}
        assert profile.events_defused == 0
        # Wall attribution covers every pop exactly once.
        assert sum(s[0] for s in profile.by_event_kind.values()) == \
            profile.events_processed

    def test_any_of_defuses_the_loser(self):
        """AnyOf(5ns, 10ns): the losing timeout still pops at t=10 but
        arrives defused (the composite already triggered)."""
        sim, profile = _attached()

        def waiter():
            index, _value = yield sim.any_of([sim.timeout(5.0),
                                              sim.timeout(10.0)])
            assert index == 0

        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        assert _kind_counts(profile) == {
            "process_start": 1, "timeout": 2,
            "composite": 1, "process_end": 1,
        }
        assert profile.events_defused == 1
        # 5 pops total (start, winner, composite, process_end, loser).
        assert profile.snapshot()["scheduling"]["defused_ratio"] == \
            pytest.approx(1 / 5)

    def test_call_at_and_plain_events_are_bucketed(self):
        sim, profile = _attached()
        fired = []
        sim.call_at(3.0, lambda: fired.append(sim.now))
        event = sim.event()

        def trigger():
            yield sim.timeout(1.0)
            event.succeed("x")

        def waiter():
            value = yield event
            assert value == "x"

        sim.process(trigger())
        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        assert fired == [3.0]
        counts = _kind_counts(profile)
        assert counts["call_at"] == 1
        assert counts["event"] == 1  # the hand-made event
        assert counts["timeout"] == 1
        assert counts["process_start"] == 2
        assert counts["process_end"] == 2


class TestSchedulingStatistics:
    def test_same_timestamp_tie_batches_pinned(self):
        """4 timeouts at t=7 and 2 at t=9 from one process spawn:
        batches are [1 (start), 4, 2, 1 (process_end at 9)]... the end
        event shares t=9 with its trigger batch, so: {1: 1, 4: 1, 3: 1}."""
        sim, profile = _attached()

        def waiter():
            yield sim.all_of([sim.timeout(7.0) for _ in range(4)]
                             + [sim.timeout(9.0) for _ in range(2)])

        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        # Pops: start@0 | 4 timeouts@7 | 2 timeouts + composite +
        # process_end @9 -> batches 1, 4, 4.
        assert profile.tie_batch_hist == {1: 1, 4: 2}
        assert profile.snapshot()["scheduling"]["max_tie_batch"] == 4

    def test_heap_depth_histogram_buckets_by_bit_length(self):
        """Depth is recorded before each pop in power-of-two buckets
        (bucket = depth.bit_length())."""
        sim, profile = _attached()

        def waiter():
            yield sim.all_of([sim.timeout(5.0) for _ in range(3)])

        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        # Depths before pops: 1 (init), 3, 2, 1, 1, 1 -> buckets 1x4, 2x2.
        assert profile.heap_depth_hist == {1: 4, 2: 2}
        assert sum(profile.heap_depth_hist.values()) == \
            profile.events_processed

    def test_trampoline_hops_on_already_processed_target(self):
        """Yielding an event that already ran its callbacks resumes the
        generator inline (no extra pop): exactly one trampoline hop."""
        sim, profile = _attached()
        early = sim.timeout(1.0)

        def waiter():
            yield sim.timeout(5.0)  # by now `early` is long processed
            value = yield early  # trampoline: continue immediately
            assert value is None

        sim.process(waiter())
        sim.run()
        profile.stop(sim.now)

        assert profile.trampoline_hops == 1
        assert profile.resume_segments > 0
        # `early` popped with no waiters; the late yield adds no pop.
        assert _kind_counts(profile)["timeout"] == 2


class TestInterruptAttribution:
    def test_interrupt_cancels_callback_and_buckets_event(self):
        sim, profile = _attached()

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                assert interrupt.cause == "wake"

        def interrupter(target):
            yield sim.timeout(2.0)
            target.interrupt("wake")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        profile.stop(sim.now)

        counts = _kind_counts(profile)
        assert counts["interrupt"] == 1
        assert profile.callbacks_cancelled == 1
        # The abandoned 100ns timeout still pops (undefused, no waiters).
        assert counts["timeout"] == 2

    def test_uninterrupted_run_counts_no_cancellations(self):
        sim, profile = _attached()

        def worker():
            yield sim.timeout(1.0)

        sim.process(worker())
        sim.run()
        profile.stop(sim.now)
        assert profile.callbacks_cancelled == 0
        assert "interrupt" not in profile.by_event_kind


class TestClusterLevelInvariants:
    """Cross-checks on a real protocol run (fixed seed)."""

    @pytest.fixture(scope="class")
    def profiled_run(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.config import ClusterConfig
        from repro.core.model import Consistency, DdpModel, Persistency
        from repro.workload.ycsb import WORKLOADS

        profile = KernelProfile()
        cluster = Cluster(
            DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
            config=ClusterConfig(servers=3, clients_per_server=3, seed=2021),
            workload=WORKLOADS["A"], profile=profile)
        cluster.run(40_000.0, warmup_ns=4_000.0)
        return profile

    def test_every_pop_lands_in_exactly_one_kind_bucket(self, profiled_run):
        assert sum(s[0] for s in profiled_run.by_event_kind.values()) == \
            profiled_run.events_processed

    def test_handlers_are_a_subset_of_deliveries(self, profiled_run):
        """Every driven handler consumed one delivered message; messages
        delivered but not yet dispatched at cutoff stay unhandled."""
        deliveries = profiled_run.by_event_kind["msg_delivery"][0]
        handled = profiled_run.messages_handled
        assert 0 < handled <= deliveries
        # The replicated-write protocol exercises several handler types.
        assert set(profiled_run.by_msg_type) == {"INV", "ACK", "VAL"}

    def test_attribution_covers_loop_wall_within_5_percent(self,
                                                           profiled_run):
        loop = profiled_run.loop_wall_seconds
        attributed = profiled_run.attributed_wall_seconds
        assert loop > 0
        assert abs(attributed - loop) <= 0.05 * loop

    def test_tie_batches_and_depth_histogram_cover_all_pops(self,
                                                            profiled_run):
        assert sum(size * count for size, count
                   in profiled_run.tie_batch_hist.items()) == \
            profiled_run.events_processed
        assert sum(profiled_run.heap_depth_hist.values()) == \
            profiled_run.events_processed
