"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok


class TestTimeout:
    def test_advances_clock(self, sim):
        sim.timeout(10.0)
        sim.run()
        assert sim.now == 10.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_value(self, sim):
        results = []

        def proc():
            value = yield sim.timeout(5, value="hello")
            results.append(value)

        sim.process(proc())
        sim.run()
        assert results == ["hello"]


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(3)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.ok and p.value == "done"
        assert sim.now == 3.0

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(2)
            yield sim.timeout(3)

        sim.process(proc())
        sim.run()
        assert sim.now == 5.0

    def test_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((sim.now, name))

        sim.process(worker("b", 2))
        sim.process(worker("a", 1))
        sim.run()
        assert log == [(1.0, "a"), (2.0, "b")]

    def test_wait_on_another_process(self, sim):
        def child():
            yield sim.timeout(7)
            return 99

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 100

    def test_unhandled_failure_surfaces(self, sim):
        def bad():
            yield sim.timeout(1)
            raise RuntimeError("boom")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_failure_consumed_by_waiter(self, sim):
        caught = []

        def bad():
            yield sim.timeout(1)
            raise ValueError("inner")

        def parent():
            try:
                yield sim.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["inner"]

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield 42

        p = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()
        assert p.triggered and not p.ok

    def test_interrupt(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(5)
            p.interrupt("wake up")

        sim.process(interrupter())
        sim.run()
        assert log == [(5.0, "wake up")]

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(1)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)


class TestCombinators:
    def test_all_of_waits_for_all(self, sim):
        def proc():
            events = [sim.timeout(3, value="x"), sim.timeout(1, value="y")]
            values = yield sim.all_of(events)
            return values

        p = sim.process(proc())
        sim.run()
        assert p.value == ["x", "y"]
        assert sim.now == 3.0

    def test_all_of_empty(self, sim):
        def proc():
            yield sim.all_of([])
            return "ok"

        p = sim.process(proc())
        sim.run()
        assert p.value == "ok"

    def test_any_of_returns_first(self, sim):
        def proc():
            result = yield sim.any_of([sim.timeout(5, value="slow"),
                                       sim.timeout(1, value="fast")])
            return result

        p = sim.process(proc())
        sim.run()
        assert p.value == (1, "fast")
        assert sim.now <= 5.0

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.any_of([])

    def test_all_of_propagates_failure(self, sim):
        def bad():
            yield sim.timeout(1)
            raise RuntimeError("child failed")

        def parent():
            yield sim.all_of([sim.process(bad()), sim.timeout(10)])

        sim.process(parent())
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run()


class TestSimulator:
    def test_run_until(self, sim):
        def ticker():
            while True:
                yield sim.timeout(1)

        sim.process(ticker())
        sim.run(until=10.5)
        assert sim.now == 10.5

    def test_run_until_past_rejected(self, sim):
        sim.timeout(5)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_deterministic_tie_break(self):
        """Same-time events fire in scheduling order, reproducibly."""
        def build_log():
            sim = Simulator()
            log = []

            def emitter(tag):
                yield sim.timeout(5)
                log.append(tag)

            for tag in ["a", "b", "c", "d"]:
                sim.process(emitter(tag))
            sim.run()
            return log

        assert build_log() == build_log() == ["a", "b", "c", "d"]

    def test_call_at(self, sim):
        fired = []
        sim.call_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_call_at_past_rejected(self, sim):
        sim.timeout(5)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4)
        assert sim.peek() == 4.0

    def test_run_until_complete(self, sim):
        def proc():
            yield sim.timeout(2)
            return 5

        assert sim.run_until_complete(sim.process(proc())) == 5

    def test_run_until_complete_deadlock_detected(self, sim):
        def stuck():
            yield sim.event()  # nobody will ever trigger this

        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(sim.process(stuck()))
