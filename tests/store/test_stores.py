"""Unit tests for all key-value store substrates."""

import pytest

from repro.store import STORE_TYPES, make_store
from repro.store.bplustree import BPlusTreeStore
from repro.store.btree import BTreeStore
from repro.store.hashtable import HashTableStore
from repro.store.memcachedlike import MemcachedStore
from repro.store.sortedmap import SortedMapStore

ALL_STORES = sorted(STORE_TYPES)


@pytest.fixture(params=ALL_STORES)
def store(request):
    return make_store(request.param)


class TestCommonBehavior:
    def test_get_missing_returns_none(self, store):
        assert store.get(42) is None

    def test_put_get_roundtrip(self, store):
        store.put(1, "one")
        assert store.get(1) == "one"

    def test_overwrite(self, store):
        store.put(1, "a")
        store.put(1, "b")
        assert store.get(1) == "b"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(5, "x")
        assert store.delete(5)
        assert store.get(5) is None
        assert not store.delete(5)
        assert len(store) == 0

    def test_len_tracks_inserts(self, store):
        for i in range(50):
            store.put(i, i * 10)
        assert len(store) == 50

    def test_contains(self, store):
        store.put(3, "x")
        assert 3 in store
        assert 4 not in store

    def test_items_roundtrip(self, store):
        expected = {i: i * 2 for i in range(30)}
        for k, v in expected.items():
            store.put(k, v)
        assert dict(store.items()) == expected

    def test_costs_positive(self, store):
        store.put(1, "x")
        assert store.read_cost(1) > 0
        assert store.write_cost(2, "y") > 0

    def test_many_inserts_and_deletes(self, store):
        for i in range(200):
            store.put(i, i)
        for i in range(0, 200, 2):
            assert store.delete(i)
        assert len(store) == 100
        for i in range(200):
            expected = None if i % 2 == 0 else i
            assert store.get(i) == expected


class TestHashTable:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            HashTableStore(initial_capacity=100)

    def test_resize_preserves_content(self):
        table = HashTableStore(initial_capacity=8)
        for i in range(100):
            table.put(i, str(i))
        assert table.capacity > 8
        for i in range(100):
            assert table.get(i) == str(i)

    def test_load_factor_bounded(self):
        table = HashTableStore(initial_capacity=8, max_load=0.5)
        for i in range(1000):
            table.put(i, i)
        assert table.load_factor <= 0.5 + 1 / table.capacity

    def test_tombstone_reuse(self):
        table = HashTableStore(initial_capacity=64)
        for i in range(20):
            table.put(i, i)
        for i in range(20):
            table.delete(i)
        for i in range(20):
            table.put(i, i + 100)
        assert all(table.get(i) == i + 100 for i in range(20))

    def test_walk_length_is_probe_distance(self):
        table = HashTableStore(initial_capacity=64)
        table.put(1, "x")
        assert table._walk_length(1) >= 1


class TestSortedMap:
    def test_items_sorted(self):
        tree = SortedMapStore()
        for key in [5, 1, 9, 3, 7]:
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]

    def test_range_query(self):
        tree = SortedMapStore()
        for key in range(0, 100, 10):
            tree.put(key, key)
        assert [k for k, _ in tree.range(25, 65)] == [30, 40, 50, 60]

    def test_min_max(self):
        tree = SortedMapStore()
        assert tree.min_key() is None
        for key in [4, 2, 8]:
            tree.put(key, key)
        assert tree.min_key() == 2
        assert tree.max_key() == 8

    def test_avl_balance_bound(self):
        """1000 sequential inserts stay logarithmically shallow."""
        tree = SortedMapStore()
        for key in range(1000):
            tree.put(key, key)
        # AVL height bound: 1.44 * log2(n + 2)
        assert tree.height <= 16

    def test_delete_rebalances(self):
        tree = SortedMapStore()
        for key in range(100):
            tree.put(key, key)
        for key in range(0, 100, 3):
            tree.delete(key)
        remaining = [k for k, _ in tree.items()]
        assert remaining == sorted(remaining)
        assert len(tree) == len(remaining)


class TestBTree:
    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTreeStore(min_degree=1)

    def test_splits_keep_order(self):
        tree = BTreeStore(min_degree=2)
        for key in range(100):
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_depth_grows_slowly(self):
        tree = BTreeStore(min_degree=8)
        for key in range(5000):
            tree.put(key, key)
        assert tree.depth <= 5

    def test_delete_with_merges(self):
        tree = BTreeStore(min_degree=2)
        keys = list(range(200))
        for key in keys:
            tree.put(key, key)
        for key in keys[::2]:
            assert tree.delete(key)
        expected = keys[1::2]
        assert [k for k, _ in tree.items()] == expected

    def test_reverse_insert_order(self):
        tree = BTreeStore(min_degree=3)
        for key in reversed(range(300)):
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == list(range(300))


class TestBPlusTree:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTreeStore(order=2)

    def test_leaf_chain_iteration(self):
        tree = BPlusTreeStore(order=4)
        for key in [50, 10, 90, 30, 70, 20, 80, 40, 60, 0]:
            tree.put(key, key)
        assert [k for k, _ in tree.items()] == sorted(
            [50, 10, 90, 30, 70, 20, 80, 40, 60, 0])

    def test_range_uses_leaf_chain(self):
        tree = BPlusTreeStore(order=4)
        for key in range(100):
            tree.put(key, key * 2)
        assert tree.range(10, 14) == [(10, 20), (11, 22), (12, 24),
                                      (13, 26), (14, 28)]

    def test_depth_grows_slowly(self):
        tree = BPlusTreeStore(order=16)
        for key in range(5000):
            tree.put(key, key)
        assert tree.depth <= 5

    def test_delete_from_leaves(self):
        tree = BPlusTreeStore(order=4)
        for key in range(50):
            tree.put(key, key)
        for key in range(0, 50, 5):
            assert tree.delete(key)
        assert len(tree) == 40
        assert tree.get(5) is None
        assert tree.get(6) == 6


class TestMemcached:
    def test_eviction_when_full(self):
        store = MemcachedStore(capacity_bytes=8 * 1024, num_classes=2,
                               min_chunk=64)
        for i in range(1000):
            store.put(i, i)
        assert store.total_evictions > 0
        assert len(store) < 1000

    def test_lru_order(self):
        store = MemcachedStore(capacity_bytes=64 * 3 * 2, num_classes=2,
                               min_chunk=64)
        # Class 0 has 1-2 chunks; fill, touch the oldest, insert, and the
        # untouched middle entry should be the one evicted.
        store.put(1, 10)
        store.put(2, 20)
        max_chunks = store.slab_stats()[0][2]
        if max_chunks >= 2:
            store.get(1)          # 1 becomes most recently used
            for extra in range(3, 3 + max_chunks):
                store.put(extra, extra)
            assert store.get(2) is None or store.get(1) is not None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemcachedStore(capacity_bytes=0)

    def test_slab_class_selection(self):
        store = MemcachedStore(capacity_bytes=1024 * 1024, min_chunk=64,
                               num_classes=4)
        store.put(1, "x" * 50)    # fits class 0 (64B)
        store.put(2, "y" * 100)   # needs class 1 (128B)
        stats = store.slab_stats()
        assert stats[0][1] == 1
        assert stats[1][1] == 1

    def test_reclass_on_resize(self):
        store = MemcachedStore(capacity_bytes=1024 * 1024, min_chunk=64,
                               num_classes=4)
        store.put(1, "x" * 50)
        store.put(1, "x" * 200)   # moves to a larger class
        assert store.get(1) == "x" * 200
        assert len(store) == 1


class TestFactory:
    def test_make_store_all_names(self):
        for name in ALL_STORES:
            assert make_store(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown store"):
            make_store("nosuch")
