"""Property-based tests: every store behaves like a Python dict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.store import STORE_TYPES, make_store

KEYS = st.integers(min_value=0, max_value=500)
VALUES = st.integers(min_value=-10_000, max_value=10_000)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("get"), KEYS, st.just(0)),
        st.tuples(st.just("delete"), KEYS, st.just(0)),
    ),
    max_size=200,
)


@pytest.mark.parametrize("store_name",
                         ["hashtable", "sortedmap", "btree", "bplustree"])
@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_store_matches_dict_model(store_name, ops):
    """Interleaved puts/gets/deletes agree with a dict reference."""
    store = make_store(store_name)
    model = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "get":
            assert store.get(key) == model.get(key)
        else:
            assert store.delete(key) == (key in model)
            model.pop(key, None)
    assert len(store) == len(model)
    assert dict(store.items()) == model


@pytest.mark.parametrize("store_name", ["sortedmap", "btree", "bplustree"])
@given(keys=st.lists(KEYS, unique=True, max_size=150))
@settings(max_examples=40, deadline=None)
def test_ordered_stores_iterate_sorted(store_name, keys):
    store = make_store(store_name)
    for key in keys:
        store.put(key, key)
    assert [k for k, _ in store.items()] == sorted(keys)


@pytest.mark.parametrize("store_name", ["sortedmap", "bplustree"])
@given(keys=st.lists(KEYS, unique=True, min_size=1, max_size=100),
       bounds=st.tuples(KEYS, KEYS))
@settings(max_examples=40, deadline=None)
def test_range_query_matches_filter(store_name, keys, bounds):
    low, high = min(bounds), max(bounds)
    store = make_store(store_name)
    for key in keys:
        store.put(key, key * 3)
    expected = [(k, k * 3) for k in sorted(keys) if low <= k <= high]
    assert store.range(low, high) == expected


@given(ops=OPS)
@settings(max_examples=40, deadline=None)
def test_memcached_never_exceeds_capacity(ops):
    """The memcached store may evict, but never corrupts what it keeps."""
    store = make_store("memcached")
    model = {}
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        else:
            got = store.get(key)
            # Eviction may lose the key, but a present value must be right.
            if got is not None:
                assert got == model.get(key)
    for _slab_chunk, used, max_chunks in store.slab_stats():
        assert used <= max_chunks


class HashTableMachine(RuleBasedStateMachine):
    """Stateful test of the open-addressing hash table with tombstones."""

    def __init__(self):
        super().__init__()
        self.table = make_store("hashtable")
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.table.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        assert self.table.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.table.get(key) == self.model.get(key)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)


TestHashTableStateful = HashTableMachine.TestCase
TestHashTableStateful.settings = settings(max_examples=25,
                                          stateful_step_count=50,
                                          deadline=None)
