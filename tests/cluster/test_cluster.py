"""Tests for cluster assembly and the run harness."""

import pytest

from repro.cluster.cluster import Cluster, run_simulation
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency as C, DdpModel, Persistency as P
from repro.net.network import NetworkConfig
from repro.workload.ycsb import WORKLOADS

MODEL = DdpModel(C.CAUSAL, P.SYNCHRONOUS)


class TestClusterConfig:
    def test_defaults_match_table5(self):
        config = ClusterConfig()
        assert config.servers == 5
        assert config.clients_per_server == 20
        assert config.cores_per_server == 20
        assert config.total_clients == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(servers=1)
        with pytest.raises(ValueError):
            ClusterConfig(clients_per_server=-1)

    def test_with_overrides(self):
        config = ClusterConfig().with_overrides(
            clients_per_server=2, network=NetworkConfig(round_trip_ns=500))
        assert config.clients_per_server == 2
        assert config.network.round_trip_ns == 500
        assert config.servers == 5


class TestClusterAssembly:
    def test_builds_requested_topology(self):
        cluster = Cluster(MODEL, config=ClusterConfig(servers=3,
                                                      clients_per_server=2),
                          workload=WORKLOADS["A"])
        assert len(cluster.nodes) == 3
        assert len(cluster.clients) == 6
        assert len(cluster.network.node_ids) == 3

    def test_no_workload_means_no_clients(self):
        cluster = Cluster(MODEL, config=ClusterConfig(servers=2,
                                                      clients_per_server=5))
        assert cluster.clients == []

    def test_engines_share_metrics_and_txn_table(self):
        cluster = Cluster(MODEL, config=ClusterConfig(servers=3))
        assert len({id(e.metrics) for e in cluster.engines}) == 1
        assert len({id(e.txn_table) for e in cluster.engines}) == 1

    def test_store_type_none(self):
        config = ClusterConfig(servers=2, store_type=None)
        cluster = Cluster(MODEL, config=config)
        assert cluster.nodes[0].store is None

    def test_store_type_selected(self):
        config = ClusterConfig(servers=2, store_type="btree")
        cluster = Cluster(MODEL, config=config)
        assert cluster.nodes[0].store.name == "btree"


class TestRunSimulation:
    def test_produces_summary(self):
        config = ClusterConfig(servers=3, clients_per_server=2)
        summary = run_simulation(MODEL, WORKLOADS["A"], config=config,
                                 duration_ns=30_000, warmup_ns=3_000)
        assert summary.requests > 0
        assert summary.throughput_ops_per_s > 0
        assert summary.mean_read_ns > 0
        assert summary.total_messages > 0

    def test_deterministic_with_same_seed(self):
        config = ClusterConfig(servers=3, clients_per_server=2, seed=7)
        a = run_simulation(MODEL, WORKLOADS["A"], config=config,
                           duration_ns=20_000, warmup_ns=2_000)
        b = run_simulation(MODEL, WORKLOADS["A"], config=config,
                           duration_ns=20_000, warmup_ns=2_000)
        assert a.requests == b.requests
        assert a.mean_read_ns == b.mean_read_ns
        assert a.total_messages == b.total_messages

    def test_seed_changes_results(self):
        base = ClusterConfig(servers=3, clients_per_server=2, seed=1)
        other = base.with_overrides(seed=2)
        a = run_simulation(MODEL, WORKLOADS["A"], config=base,
                           duration_ns=20_000, warmup_ns=2_000)
        b = run_simulation(MODEL, WORKLOADS["A"], config=other,
                           duration_ns=20_000, warmup_ns=2_000)
        assert (a.requests, a.mean_read_ns) != (b.requests, b.mean_read_ns)

    def test_store_data_replicated(self):
        cluster = Cluster(MODEL,
                          config=ClusterConfig(servers=3, clients_per_server=2,
                                               store_type="hashtable"),
                          workload=WORKLOADS["W"])
        cluster.run(duration_ns=30_000)
        for client in cluster.clients:
            client.request_stop()
        cluster.sim.run(until=cluster.sim.now + 200_000)  # quiesce
        # Every written key eventually lands in every node's store.
        reference = dict(cluster.nodes[0].store.items())
        assert reference
        for node in cluster.nodes[1:]:
            assert set(node.store.keys()) == set(reference)
