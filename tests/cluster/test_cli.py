"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.consistency == "causal"
        assert args.persistency == "synchronous"
        assert args.workload == "A"

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--consistency", "serializable"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_nonpositive_observability_values_rejected(self):
        for flags in (["--trace-limit", "0"], ["--trace-limit", "-5"],
                      ["--metrics-window-us", "0"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["run"] + flags)

    def test_unwritable_artifact_path_fails_before_simulating(self):
        with pytest.raises(SystemExit, match="cannot write"):
            main(["run", "--duration-us", "20",
                  "--trace-out", "/nonexistent-dir/t.json"])


class TestCommands:
    def test_run(self, capsys):
        code = main(["run", "--consistency", "causal",
                     "--persistency", "eventual",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<Causal, Eventual>" in out
        assert "thr(Mops/s)" in out

    def test_sweep_default_selection(self, capsys):
        code = main(["sweep", "--servers", "3", "--clients", "6",
                     "--duration-us", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<Linearizable, Synchronous>" in out
        assert "<Eventual, Eventual>" in out
        assert "thr(norm)" in out

    def test_tradeoffs(self, capsys):
        code = main(["tradeoffs"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") == 10  # the ten Table 4 rows

    def test_tradeoffs_all(self, capsys):
        code = main(["tradeoffs", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") == 25

    def test_run_with_observability_artifacts(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        report_path = tmp_path / "report.json"
        jsonl_path = tmp_path / "trace.jsonl"
        code = main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--trace-out", str(trace_path),
                     "--trace-jsonl", str(jsonl_path),
                     "--metrics-out", str(report_path),
                     "--metrics-window-us", "5", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace" in out and "metrics" in out and "kernel:" in out

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        assert events, "trace must contain events"
        assert {"i", "X", "M"} <= {e["ph"] for e in events}
        assert all("pid" in e and "tid" in e for e in events)
        assert all("ts" in e for e in events if e["ph"] != "M")
        assert trace["otherData"]["record_count"] > 0

        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.run_report/6"
        assert report["meta"]["window_ns"] == 5000.0
        assert len(report["meta"]["config_hash"]) == 16
        assert report["windows"], "windowed throughput series missing"
        assert all("p50_ns" in w and "p99_ns" in w
                   and "throughput_ops_per_s" in w
                   for w in report["windows"])
        assert report["windows_by_node"]
        assert report["messages"]["windows_by_type"]
        assert report["lag"]["per_node"], "VP/DP lag series missing"
        first_node = next(iter(report["lag"]["per_node"].values()))
        assert "vp_mean_ns" in first_node[0]
        assert "dp_p99_ns" in first_node[0]
        assert report["profile"]["events_processed"] > 0
        # The /5 enrichment rides along whenever --profile is set.
        assert report["profile"]["attribution"]["by_event_kind"]
        assert report["profile"]["scheduling"]["messages_handled"] > 0
        assert report["trace"]["records"] > 0

        lines = jsonl_path.read_text().splitlines()
        assert lines and all(json.loads(line)["cat"] for line in lines)

    def test_run_trace_ring_caps_records(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--trace-out", str(trace_path),
                     "--trace-limit", "100", "--trace-ring"])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["record_count"] == 100
        assert trace["otherData"]["dropped_records"] > 0

    def test_trace_subcommand(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        code = main(["trace", "--consistency", "causal",
                     "--persistency", "eventual",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--limit", "3",
                     "--out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "category counts:" in out
        assert "msg_send" in out
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]

    def test_trace_subcommand_category_filter(self, capsys):
        code = main(["trace", "--servers", "3", "--clients", "6",
                     "--duration-us", "20", "--limit", "0",
                     "--category", "persist"])
        out = capsys.readouterr().out
        assert code == 0
        assert "persist" in out
        assert "msg_send" not in out

    def test_recover(self, capsys):
        code = main(["recover", "--consistency", "linearizable",
                     "--persistency", "strict",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--strategy", "majority"])
        out = capsys.readouterr().out
        assert code == 0
        assert "total recovery time" in out
        assert "divergent keys" in out

    def test_run_with_health_monitoring(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.json"
        code = main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--health",
                     "--health-interval-us", "2",
                     "--metrics-out", str(report_path),
                     "--trace-out", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "health" in out and "violations=0" in out
        report = json.loads(report_path.read_text())
        health = report["health"]
        assert health["samples"] > 0
        assert health["violations"]["total"] == 0
        assert set(health["series"]["per_node"]) == {"0", "1", "2"}
        trace = json.loads(trace_path.read_text())
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert {e["name"] for e in counters} == {"health.kernel",
                                                "health.pressure"}

    def test_journey_caps_report_their_drops(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--journey-out", str(report_path),
                     "--journey-max", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "5 tracked" in out
        report = json.loads(report_path.read_text())
        assert report["journeys"]["journeys"] == 5
        assert report["journeys"]["dropped"] > 0

    def test_run_audit_passes_own_model(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["run", "--consistency", "linearizable",
                     "--persistency", "synchronous",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--audit",
                     "--metrics-out", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "target <linearizable, synchronous>: PASS" in out
        report = json.loads(report_path.read_text())
        audit = report["audit"]
        assert audit["schema"] == "repro.audit_report/1"
        assert audit["target"]["ok"]
        assert audit["totals"]["cells"] == 25

    def test_history_out_then_audit_subcommand(self, capsys, tmp_path):
        history_path = tmp_path / "history.jsonl"
        code = main(["run", "--consistency", "causal",
                     "--persistency", "synchronous",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--history-out", str(history_path)])
        assert code == 0
        assert history_path.exists()
        capsys.readouterr()

        code = main(["audit", str(history_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "target <causal, synchronous>: PASS" in out

    def test_audit_cross_model_override_fails(self, capsys, tmp_path):
        history_path = tmp_path / "history.jsonl"
        main(["run", "--consistency", "eventual",
              "--persistency", "eventual",
              "--servers", "3", "--clients", "6",
              "--duration-us", "60",
              "--history-out", str(history_path)])
        capsys.readouterr()
        code = main(["audit", str(history_path),
                     "--consistency", "linearizable",
                     "--persistency", "strict"])
        out = capsys.readouterr().out
        assert code == 1
        assert "target <linearizable, strict>: FAIL" in out

    def test_audit_json_document(self, capsys, tmp_path):
        history_path = tmp_path / "history.jsonl"
        out_path = tmp_path / "audit.json"
        main(["run", "--servers", "3", "--clients", "6",
              "--duration-us", "30",
              "--history-out", str(history_path)])
        capsys.readouterr()
        code = main(["audit", str(history_path), "--json",
                     "--out", str(out_path)])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["schema"] == "repro.audit_report/1"
        assert doc["usable"]
        assert json.loads(out_path.read_text()) == doc

    def test_audit_rejects_non_history_file(self, capsys, tmp_path):
        path = tmp_path / "not_history.json"
        path.write_text('{"schema": "repro.run_report/6"}\n')
        code = main(["audit", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "repro:" in err

    def test_audit_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["audit", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "repro:" in capsys.readouterr().err

    def test_profile_prints_the_hotspot_table(self, capsys):
        code = main(["profile", "--servers", "3", "--clients", "6",
                     "--duration-us", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "kernel loop:" in out
        assert "by event kind" in out
        assert "by message handler" in out
        assert "timeout" in out
        assert "scheduling:" in out

    def test_profile_json_document(self, capsys):
        code = main(["profile", "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "repro.kernel_profile/1"
        assert doc["meta"]["config_hash"]
        profile = doc["profile"]
        assert profile["events_processed"] > 0
        assert profile["attribution"]["by_msg_type"]
        assert profile["attribution"]["attributed_fraction"] > 0.9
        assert "sampling" not in doc  # sampler is opt-in

    def test_profile_writes_flame_artifacts(self, capsys, tmp_path):
        folded = tmp_path / "run.folded"
        speedscope = tmp_path / "run.speedscope.json"
        code = main(["profile", "--servers", "3", "--clients", "6",
                     "--duration-us", "200",
                     "--sample-interval-ms", "0.25",
                     "--flame-out", str(folded),
                     "--speedscope-out", str(speedscope)])
        out = capsys.readouterr().out
        assert code == 0
        assert str(folded) in out and str(speedscope) in out
        lines = folded.read_text().splitlines()
        assert lines, "sampler captured nothing in 200 simulated us"
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert int(weight) >= 1
            assert ";" in stack or stack  # phase-rooted folded stack
        doc = json.loads(speedscope.read_text())
        assert doc["profiles"][0]["type"] == "sampled"

    def test_profile_unwritable_out_exits_2(self, capsys, tmp_path):
        code = main(["profile", "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--flame-out", str(tmp_path / "no-dir" / "x.folded")])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot write" in captured.err


class TestInputFileModes:
    def test_trace_reopens_a_saved_file(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        assert main(["trace", "--servers", "3", "--clients", "6",
                     "--duration-us", "20", "--limit", "0",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        code = main(["trace", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "event counts:" in out
        assert "msg_send" in out

    def test_trace_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["trace", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: cannot read")
        assert "Traceback" not in captured.err

    def test_trace_schema_mismatch_exits_2(self, capsys, tmp_path):
        path = tmp_path / "not-a-trace.json"
        path.write_text(json.dumps({"schema": "repro.run_report/3"}))
        code = main(["trace", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not a Chrome trace_event file" in captured.err

    def test_journey_reopens_a_saved_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main(["journey", "--servers", "3", "--clients", "6",
                     "--duration-us", "30",
                     "--journey-out", str(path)]) == 0
        capsys.readouterr()
        code = main(["journey", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "journeys" in out
        assert "vp:" in out and "dp:" in out

    def test_journey_unreadable_file_exits_2(self, capsys, tmp_path):
        code = main(["journey", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: cannot read")

    def test_journey_report_without_journeys_exits_2(self, capsys, tmp_path):
        path = tmp_path / "plain.json"
        assert main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "20",
                     "--metrics-out", str(path)]) == 0
        capsys.readouterr()
        code = main(["journey", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "no journeys section" in captured.err

    def test_journey_invalid_json_exits_2(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{oops")
        code = main(["journey", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "not valid JSON" in captured.err


class TestDiffCommand:
    def _report(self, tmp_path, name, seed="2021"):
        path = tmp_path / name
        assert main(["run", "--servers", "3", "--clients", "6",
                     "--duration-us", "20", "--seed", seed,
                     "--metrics-out", str(path)]) == 0
        return path

    def test_same_seed_no_regression(self, capsys, tmp_path):
        base = self._report(tmp_path, "a.json")
        cand = self._report(tmp_path, "b.json")
        capsys.readouterr()
        code = main(["diff", str(base), str(cand)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no-regression" in out

    def test_injected_p99_regression_names_the_metric(self, capsys,
                                                      tmp_path):
        base = self._report(tmp_path, "a.json")
        doc = json.loads(base.read_text())
        doc["summary"]["p99_write_ns"] *= 1.2
        cand = tmp_path / "worse.json"
        cand.write_text(json.dumps(doc))
        capsys.readouterr()
        code = main(["diff", str(base), str(cand), "--json"])
        out = capsys.readouterr().out
        assert code == 1
        parsed = json.loads(out)
        assert parsed["verdict"] == "regression"
        assert parsed["regressions"] == ["summary/p99_write_ns"]

    def test_config_mismatch_exits_2_unless_forced(self, capsys, tmp_path):
        base = self._report(tmp_path, "a.json")
        doc = json.loads(base.read_text())
        doc["meta"]["config_hash"] = "0" * 16
        cand = tmp_path / "other.json"
        cand.write_text(json.dumps(doc))
        code = main(["diff", str(base), str(cand)])
        captured = capsys.readouterr()
        assert code == 2
        assert "apples-to-oranges" in captured.err
        assert main(["diff", str(base), str(cand), "--force"]) == 0
        capsys.readouterr()

    def test_diff_writes_json_artifact(self, capsys, tmp_path):
        base = self._report(tmp_path, "a.json")
        cand = self._report(tmp_path, "b.json")
        out_path = tmp_path / "diff.json"
        capsys.readouterr()
        code = main(["diff", str(base), str(cand), "--out", str(out_path)])
        capsys.readouterr()
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert doc["schema"] == "repro.diff_report/1"
        assert doc["verdict"] == "no-regression"

    def test_unusable_input_exits_2(self, capsys, tmp_path):
        base = self._report(tmp_path, "a.json")
        capsys.readouterr()
        code = main(["diff", str(base), str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("repro: cannot read")


class TestSweepObservatory:
    """The parallel sweep runner and the dashboard subcommand."""

    ARGS = ["sweep", "--servers", "3", "--clients", "6",
            "--duration-us", "15", "--no-progress"]

    def test_sweep_out_is_schema_valid_and_worker_invariant(self, capsys,
                                                            tmp_path):
        serial, parallel = tmp_path / "w1.json", tmp_path / "w2.json"
        assert main(self.ARGS + ["--out", str(serial)]) == 0
        assert main(self.ARGS + ["--workers", "2", "--out",
                                 str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()
        from repro.obs.schemas import validate_artifact
        doc = json.loads(serial.read_text())
        assert validate_artifact(doc).family == "repro.sweep_report"
        assert doc["totals"] == {"cells": 6, "ok": 6, "errors": 0}

    def test_sweep_crash_partial_artifact_and_exit_1(self, capsys,
                                                     monkeypatch,
                                                     tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "causal:eventual")
        out = tmp_path / "partial.json"
        code = main(self.ARGS + ["--workers", "2", "--out", str(out)])
        captured = capsys.readouterr()
        assert code == 1
        assert "errored" in captured.err
        from repro.obs.schemas import validate_artifact
        doc = json.loads(out.read_text())
        validate_artifact(doc, family="repro.sweep_report")
        assert doc["totals"]["errors"] == 1
        error = [c for c in doc["cells"] if c["status"] == "error"][0]
        assert (error["consistency"], error["persistency"]) == (
            "causal", "eventual")

    def test_sweep_progress_is_line_oriented_off_tty(self, capsys,
                                                     tmp_path):
        args = [a for a in self.ARGS if a != "--no-progress"]
        assert main(args + ["--out", str(tmp_path / "s.json")]) == 0
        captured = capsys.readouterr()
        assert "\r" not in captured.err and "\x1b" not in captured.err
        lines = [l for l in captured.err.splitlines() if l]
        assert len(lines) == 6
        assert lines[0].startswith("[1/6]")

    def test_sweep_html_out_matches_report(self, capsys, tmp_path):
        out, html_out = tmp_path / "s.json", tmp_path / "s.html"
        assert main(self.ARGS + ["--out", str(out), "--html-out",
                                 str(html_out)]) == 0
        capsys.readouterr()
        page = html_out.read_text()
        doc = json.loads(out.read_text())
        cell = doc["cells"][0]
        value = repr(cell["summary"]["throughput_ops_per_s"])
        key = f'{cell["consistency"]}/{cell["persistency"]}'
        assert (f'data-metric="throughput_ops_per_s" '
                f'data-cell="{key}" data-value="{value}"') in page

    def test_sweep_seeds_run_each_model_per_seed(self, capsys, tmp_path):
        out = tmp_path / "seeds.json"
        assert main(self.ARGS + ["--seeds", "1", "2", "--out",
                                 str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["totals"]["cells"] == 12
        assert doc["meta"]["seeds"] == [1, 2]

    def test_dash_renders_saved_report(self, capsys, tmp_path):
        out = tmp_path / "s.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        code = main(["dash", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "dashboard ->" in captured.out
        page = (tmp_path / "s.json.html").read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert "DDP sweep dashboard" in page

    def test_dash_with_baseline_and_bench_dir(self, capsys, tmp_path):
        out = tmp_path / "s.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        bench_dir = tmp_path / "results"
        bench_dir.mkdir()
        (bench_dir / "BENCH_x.json").write_text(json.dumps(
            {"schema": "repro.bench/1", "bench": "x", "config": {},
             "metrics": {"a": {"throughput_ops_per_s": 1.0},
                         "b": {"throughput_ops_per_s": 2.0}}}))
        html_out = tmp_path / "d.html"
        code = main(["dash", str(out), "--out", str(html_out),
                     "--baseline", str(out), "--bench-dir",
                     str(bench_dir)])
        capsys.readouterr()
        assert code == 0
        page = html_out.read_text()
        assert "no regression" in page
        assert "Bench trends" in page

    def test_dash_rejects_non_sweep_artifact(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"schema": "repro.run_report/6",
                                    "meta": {}, "summary": {},
                                    "windows": []}))
        code = main(["dash", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "expected a repro.sweep_report" in captured.err

    def test_dash_missing_and_invalid_inputs_exit_2(self, capsys,
                                                    tmp_path):
        assert main(["dash", str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["dash", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "repro:" in captured.err
