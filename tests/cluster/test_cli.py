"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.consistency == "causal"
        assert args.persistency == "synchronous"
        assert args.workload == "A"

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--consistency", "serializable"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run(self, capsys):
        code = main(["run", "--consistency", "causal",
                     "--persistency", "eventual",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<Causal, Eventual>" in out
        assert "thr(Mops/s)" in out

    def test_sweep_default_selection(self, capsys):
        code = main(["sweep", "--servers", "3", "--clients", "6",
                     "--duration-us", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<Linearizable, Synchronous>" in out
        assert "<Eventual, Eventual>" in out
        assert "thr(norm)" in out

    def test_tradeoffs(self, capsys):
        code = main(["tradeoffs"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") == 10  # the ten Table 4 rows

    def test_tradeoffs_all(self, capsys):
        code = main(["tradeoffs", "--all"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\n") == 25

    def test_recover(self, capsys):
        code = main(["recover", "--consistency", "linearizable",
                     "--persistency", "strict",
                     "--servers", "3", "--clients", "6",
                     "--duration-us", "30", "--strategy", "majority"])
        out = capsys.readouterr().out
        assert code == 0
        assert "total recovery time" in out
        assert "divergent keys" in out
