"""Tests for the run-report JSON artifact."""

import json
import math

from repro.analysis.metrics import Metrics, OpRecord
from repro.analysis.points import PointsTracker
from repro.analysis.waterfall import aggregate_journeys
from repro.obs import (KernelProfile, build_run_report, config_fingerprint,
                       write_run_report)
from repro.obs.report import SCHEMA, _clean
from repro.sim.trace import Tracer


def _populated_metrics() -> Metrics:
    metrics = Metrics(window_ns=100.0)
    for i in range(10):
        metrics.record_op(OpRecord("read" if i % 2 else "write",
                                   node=i % 2, client=i, key=i,
                                   start_ns=i * 40.0, end_ns=i * 40.0 + 25.0))
    metrics.record_message("INV", 64, time_ns=50.0)
    metrics.record_message("INV", 64, time_ns=250.0)
    metrics.record_message("ACK", 16, time_ns=260.0)
    return metrics


class TestClean:
    def test_nan_and_inf_become_null(self):
        cleaned = _clean({"a": float("nan"), "b": float("inf"),
                          "c": [1.0, float("-inf")], "d": "ok"})
        assert cleaned == {"a": None, "b": None, "c": [1.0, None], "d": "ok"}

    def test_dataclasses_become_dicts(self):
        op = OpRecord("read", node=0, client=1, key=2,
                      start_ns=1.0, end_ns=3.0)
        cleaned = _clean(op)
        assert cleaned["op_type"] == "read"
        assert cleaned["end_ns"] == 3.0


class TestBuildRunReport:
    def test_core_sections(self):
        metrics = _populated_metrics()
        summary = metrics.summarize(400.0)
        report = build_run_report(summary, metrics, 100.0,
                                  meta={"seed": 7})
        assert report["schema"] == SCHEMA
        assert report["meta"]["seed"] == 7
        assert report["meta"]["window_ns"] == 100.0
        assert report["summary"]["requests"] == 10
        assert len(report["windows"]) == 4  # last op ends at 385 ns
        assert report["windows"][0]["ops"] == 2  # ends at 25 and 65 ns
        # _clean stringifies keys so the document is valid JSON.
        assert set(report["windows_by_node"]) == {"0", "1"}
        assert report["messages"]["by_type"] == {"INV": 2, "ACK": 1}
        assert report["messages"]["windows_by_type"]["INV"] == [1, 0, 1]
        assert report["messages"]["windows_by_type"]["ACK"] == [0, 0, 1]

    def test_optional_sections_present_only_when_measured(self):
        metrics = _populated_metrics()
        summary = metrics.summarize(400.0)
        bare = build_run_report(summary, metrics, 100.0)
        assert "lag" not in bare and "profile" not in bare
        assert "trace" not in bare

        points = PointsTracker(2)
        points.emit(10.0, "write_issue", node=0, key=1, version=(1, 0))
        points.emit(30.0, "apply", node=1, key=1, version=(1, 0))
        points.emit(90.0, "persist", node=1, key=1, version=(1, 0))
        tracer = Tracer()
        tracer.emit(1.0, "msg_send", node=0)
        profile = KernelProfile()
        profile.stop(400.0)
        full = build_run_report(summary, metrics, 100.0, points=points,
                                profile=profile, tracer=tracer)
        assert full["lag"]["summary"]["writes_tracked"] == 1
        node_rows = full["lag"]["per_node"]["1"]
        assert node_rows[0]["vp_mean_ns"] == 20.0
        assert node_rows[0]["dp_mean_ns"] == 80.0
        assert full["profile"]["sim_ns"] == 400.0
        assert full["trace"] == {"records": 1, "dropped": 0,
                                 "categories": {"msg_send": 1}}

    def test_written_report_is_strict_json(self, tmp_path):
        metrics = Metrics(window_ns=100.0)
        # One op so there is a window, whose p99 on an empty sibling
        # window would be NaN without cleaning.
        metrics.record_op(OpRecord("read", 0, 0, 1, 10.0, 250.0))
        summary = metrics.summarize(400.0)
        report = build_run_report(summary, metrics, 100.0)
        path = tmp_path / "report.json"
        write_run_report(str(path), report)
        parsed = json.loads(path.read_text())  # strict: rejects NaN
        assert parsed["schema"] == SCHEMA
        empty_window = parsed["windows"][0]
        assert empty_window["ops"] == 0
        assert empty_window["p99_ns"] is None

    def test_windowed_lag_nan_cleaning(self):
        points = PointsTracker(1)
        points.emit(10.0, "write_issue", node=0, key=1, version=(1, 0))
        points.emit(230.0, "apply", node=0, key=1, version=(1, 0))
        metrics = Metrics(window_ns=100.0)
        summary = metrics.summarize(400.0)
        report = build_run_report(summary, metrics, 100.0, points=points)
        (window,) = report["lag"]["per_node"]["0"]
        assert window["vp_samples"] == 1
        assert window["dp_samples"] == 0
        assert window["dp_mean_ns"] is None  # NaN cleaned

    def test_report_roundtrips_without_nan(self):
        metrics = _populated_metrics()
        summary = metrics.summarize(400.0)
        report = build_run_report(summary, metrics, 100.0)
        text = json.dumps(report, allow_nan=False)  # must not raise
        assert not math.isnan(len(text))

    def test_health_section_folds_in_from_a_monitor(self):
        from repro.cluster.cluster import Cluster
        from repro.cluster.config import ClusterConfig
        from repro.core.model import Consistency, DdpModel, Persistency
        from repro.obs import HealthMonitor
        from repro.workload.ycsb import WORKLOADS

        monitor = HealthMonitor(interval_ns=2_000.0)
        metrics = Metrics(window_ns=10_000.0)
        cluster = Cluster(
            DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
            config=ClusterConfig(servers=3, clients_per_server=3, seed=2021),
            workload=WORKLOADS["A"], metrics=metrics, monitor=monitor)
        summary = cluster.run(40_000.0, warmup_ns=4_000.0)
        report = build_run_report(summary, metrics, 10_000.0,
                                  monitor=monitor)
        health = report["health"]
        assert health["samples"] == len(monitor) > 0
        assert health["violations"]["total"] == 0
        assert set(health["series"]["per_node"]) == {"0", "1", "2"}
        json.dumps(report, allow_nan=False)  # strict JSON

    def test_journey_dropped_counter_surfaces_in_report(self):
        """A sampling-capped JourneyTracker reports what it lost
        (journeys.dropped) so waterfall numbers are never silently
        partial."""
        from repro.cluster.cluster import run_simulation
        from repro.cluster.config import ClusterConfig
        from repro.core.model import Consistency, DdpModel, Persistency
        from repro.obs import JourneyTracker
        from repro.workload.ycsb import WORKLOADS

        tracker = JourneyTracker(3, max_journeys=5)
        metrics = Metrics(window_ns=10_000.0)
        summary = run_simulation(
            DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS),
            WORKLOADS["A"],
            config=ClusterConfig(servers=3, clients_per_server=3, seed=2021),
            duration_ns=40_000.0, warmup_ns=4_000.0,
            tracer=tracker, metrics=metrics)
        assert tracker.dropped > 0
        waterfall = aggregate_journeys(tracker.journeys, 3, label="capped",
                                       dropped=tracker.dropped)
        report = build_run_report(summary, metrics, 10_000.0,
                                  journeys=waterfall)
        assert report["journeys"]["journeys"] == 5
        assert report["journeys"]["dropped"] == tracker.dropped


class TestConfigFingerprint:
    def test_stable_and_order_insensitive(self):
        a = config_fingerprint({"model": "<Causal, Synchronous>",
                                "servers": 5, "workload": "A"})
        b = config_fingerprint({"workload": "A", "servers": 5,
                                "model": "<Causal, Synchronous>"})
        assert a == b
        assert len(a) == 16  # blake2b digest_size=8, hex

    def test_different_configs_differ(self):
        base = {"model": "<Causal, Synchronous>", "servers": 5}
        assert config_fingerprint(base) != \
            config_fingerprint(dict(base, servers=7))

    def test_non_json_values_hash_via_clean(self):
        from repro.core.model import Consistency

        # Non-JSON values stringify deterministically before hashing.
        assert config_fingerprint({"consistency": Consistency.CAUSAL}) == \
            config_fingerprint({"consistency": str(Consistency.CAUSAL)})

    def test_pinned_digest(self):
        # A process-salted ingredient sneaking in would fail this on
        # every run (the PR-1 builtin-hash lesson).
        assert config_fingerprint({"servers": 5, "workload": "A"}) == \
            config_fingerprint({"servers": 5, "workload": "A"})
        assert config_fingerprint({}) == "01e7b720ff566d53"
