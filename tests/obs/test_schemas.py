"""The artifact schema registry: tags, parsing, validation."""

import pytest

from repro.obs.schemas import (BENCH_SCHEMA, RUN_REPORT_SCHEMA, SCHEMAS,
                               SWEEP_REPORT_SCHEMA, SchemaError,
                               parse_schema_tag, schema_tag, schema_tags,
                               validate_artifact)


class TestRegistry:
    def test_every_family_has_tags_and_required_keys(self):
        for family, schema in SCHEMAS.items():
            assert schema.family == family
            assert schema.versions, family
            assert schema.tags, family
            assert schema.current == f"{family}/{schema.versions[-1]}"

    def test_module_constants_are_current_tags(self):
        assert RUN_REPORT_SCHEMA == schema_tag("repro.run_report")
        assert SWEEP_REPORT_SCHEMA == "repro.sweep_report/1"
        assert BENCH_SCHEMA == "repro.bench/1"

    def test_schema_tags_lists_every_version(self):
        tags = schema_tags("repro.run_report")
        assert tags[-1] == RUN_REPORT_SCHEMA
        assert all(tag.startswith("repro.run_report/") for tag in tags)

    def test_unknown_family_raises(self):
        with pytest.raises(SchemaError, match="unknown artifact family"):
            schema_tag("repro.nonsense")


class TestParseTag:
    def test_round_trip(self):
        family, version = parse_schema_tag("repro.sweep_report/1")
        assert (family, version) == ("repro.sweep_report", 1)

    @pytest.mark.parametrize("tag", ["", "no-slash", "x/notanumber",
                                     "repro.run_report/"])
    def test_malformed(self, tag):
        with pytest.raises(SchemaError):
            parse_schema_tag(tag)


class TestValidate:
    def doc(self):
        return {"schema": SWEEP_REPORT_SCHEMA, "meta": {}, "cells": [],
                "totals": {}}

    def test_valid_doc_returns_registry_entry(self):
        schema = validate_artifact(self.doc())
        assert schema.family == "repro.sweep_report"

    def test_family_pin_enforced(self):
        validate_artifact(self.doc(), family="repro.sweep_report")
        with pytest.raises(SchemaError, match="expected"):
            validate_artifact(self.doc(), family="repro.run_report")

    def test_missing_schema_key(self):
        with pytest.raises(SchemaError, match="no schema field"):
            validate_artifact({"cells": []})

    def test_not_a_mapping(self):
        with pytest.raises(SchemaError):
            validate_artifact([1, 2, 3])

    def test_unknown_version(self):
        doc = self.doc()
        doc["schema"] = "repro.sweep_report/99"
        with pytest.raises(SchemaError, match="version"):
            validate_artifact(doc)

    def test_missing_required_key(self):
        doc = self.doc()
        del doc["cells"]
        with pytest.raises(SchemaError, match="cells"):
            validate_artifact(doc)

    def test_path_in_message(self):
        with pytest.raises(SchemaError, match="x.json"):
            validate_artifact({}, path="x.json")
