"""Tests for the Chrome trace_event exporter and the JSONL sink."""

import io
import json

import pytest

from repro.obs.export import (
    CLUSTER_PID,
    JsonlSink,
    LANES,
    chrome_trace_events,
    chrome_trace_payload,
    write_chrome_trace,
)
from repro.sim.trace import INSTANT, SPAN, Tracer


def _tracer_with_sample_records() -> Tracer:
    tracer = Tracer()
    tracer.emit(1500.0, "msg_send", node=0, msg="INV", dst=1)
    tracer.emit(2500.0, "persist", node=1, key=7, version=(1, 0))
    tracer.emit(4000.0, "read_stall", node=0, dur=750.0, key=7)
    tracer.emit(5000.0, "recovery_scan", dur=1000.0, nodes=3)  # no node
    return tracer


class TestChromeTraceEvents:
    def test_instant_event_fields(self):
        tracer = _tracer_with_sample_records()
        events = chrome_trace_events(tracer.records)
        send = events[0]
        assert send["name"] == "msg_send"
        assert send["ph"] == INSTANT
        assert send["ts"] == pytest.approx(1.5)  # ns -> us
        assert send["pid"] == 1  # node 0 -> pid 1
        assert send["s"] == "t"
        assert send["args"] == {"msg": "INV", "dst": 1}

    def test_span_event_starts_at_time_minus_dur(self):
        events = chrome_trace_events(_tracer_with_sample_records().records)
        stall = events[2]
        assert stall["ph"] == SPAN
        assert stall["ts"] == pytest.approx((4000.0 - 750.0) / 1000.0)
        assert stall["dur"] == pytest.approx(0.75)

    def test_nodeless_record_goes_to_cluster_pid(self):
        events = chrome_trace_events(_tracer_with_sample_records().records)
        assert events[3]["pid"] == CLUSTER_PID

    def test_lanes_give_stable_tids(self):
        events = chrome_trace_events(_tracer_with_sample_records().records)
        lane_names = list(LANES)
        # msg_send is a protocol event, persist a durability event.
        assert events[0]["cat"] == "protocol"
        assert events[0]["tid"] == lane_names.index("protocol")
        assert events[1]["cat"] == "durability"
        assert events[1]["tid"] == lane_names.index("durability")

    def test_unknown_category_lands_in_misc_lane(self):
        tracer = Tracer()
        tracer.emit(1.0, "totally_new_category", node=0)
        (event,) = chrome_trace_events(tracer.records)
        assert event["cat"] == "misc"
        assert event["tid"] == len(LANES)

    def test_non_json_details_are_stringified(self):
        tracer = Tracer()
        tracer.emit(1.0, "persist", node=0, version=(2, 3),
                    obj=object())
        (event,) = chrome_trace_events(tracer.records)
        assert event["args"]["version"] == [2, 3]
        assert isinstance(event["args"]["obj"], str)


class TestChromeTracePayload:
    def test_payload_shape(self):
        tracer = _tracer_with_sample_records()
        payload = chrome_trace_payload(tracer.records, dropped=2,
                                       meta={"seed": 7})
        assert isinstance(payload["traceEvents"], list)
        assert payload["otherData"]["record_count"] == 4
        assert payload["otherData"]["dropped_records"] == 2
        assert payload["otherData"]["seed"] == 7

    def test_metadata_names_processes_and_threads(self):
        tracer = _tracer_with_sample_records()
        payload = chrome_trace_payload(tracer.records)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["args"]["name"]) for e in meta}
        assert ("process_name", CLUSTER_PID, "cluster") in names
        assert ("process_name", 1, "node0") in names
        assert ("process_name", 2, "node1") in names
        assert any(e["name"] == "thread_name"
                   and e["args"]["name"] == "protocol" for e in meta)

    def test_written_file_parses_and_is_deterministic(self, tmp_path):
        tracer = _tracer_with_sample_records()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(str(a), tracer.records, dropped=0,
                           meta={"model": "<Causal, Eventual>"})
        write_chrome_trace(str(b), tracer.records, dropped=0,
                           meta={"model": "<Causal, Eventual>"})
        assert a.read_bytes() == b.read_bytes()
        data = json.loads(a.read_text())
        for event in data["traceEvents"]:
            assert "ph" in event and "pid" in event and "tid" in event
            if event["ph"] != "M":
                assert "ts" in event


class TestJsonlSink:
    def test_streams_one_line_per_emission(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(100.0, "msg_send", node=2, msg="ACK")
        sink.emit(250.0, "read_stall", node=0, dur=50.0)
        sink.close()
        lines = [json.loads(l) for l in buffer.getvalue().splitlines()]
        assert sink.emitted == 2
        assert lines[0] == {"ts": 100.0, "cat": "msg_send", "node": 2,
                            "ph": "i", "args": {"msg": "ACK"}}
        assert lines[1]["ph"] == "X"
        assert lines[1]["dur"] == 50.0

    def test_file_destination_and_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.span(10.0, 30.0, "write_stall", node=1, key=5)
        (line,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert line["dur"] == 20.0
        assert line["ts"] == 30.0
        assert line["args"] == {"key": 5}
