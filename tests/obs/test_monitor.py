"""Tests for the online health monitor.

Real-cluster runs pin down the sampling cadence, bounded storage, and
determinism; a minimal fake cluster drives the invariant probes into
violation on purpose (a healthy simulation never violates them, so the
recording path needs a rigged one).
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency
from repro.obs import (HealthMonitor, JourneyTracker, health_chrome_events,
                       health_json)
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.workload.ycsb import WORKLOADS


def _monitored_run(model=None, monitor=None, seed=2021,
                   duration_ns=40_000.0):
    model = model or DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
    if monitor is None:  # empty monitors are falsy (__len__ == 0)
        monitor = HealthMonitor(interval_ns=2_000.0)
    config = ClusterConfig(servers=3, clients_per_server=3, seed=seed)
    cluster = Cluster(model, config=config, workload=WORKLOADS["A"],
                      monitor=monitor)
    cluster.run(duration_ns, warmup_ns=4_000.0)
    return cluster, monitor


class TestSampling:
    def test_samples_on_the_simulation_clock(self):
        _, monitor = _monitored_run()
        # 40 us run, 2 us interval: ticks at 2, 4, ..., 40 us.
        assert len(monitor) == 20
        times = [s.time_ns for s in monitor.samples]
        assert times == [2_000.0 * (i + 1) for i in range(20)]

    def test_sample_shape_tracks_cluster_size(self):
        cluster, monitor = _monitored_run()
        n = len(cluster.nodes)
        for sample in monitor.samples:
            assert len(sample.nvm_outstanding) == n
            assert len(sample.nvm_banks_busy) == n
            assert len(sample.causal_buffer) == n
            assert len(sample.inflight_writes) == n
            assert len(sample.inflight_rounds) == n

    def test_a_loaded_run_shows_pressure(self):
        _, monitor = _monitored_run()
        assert monitor.peak_event_queue_depth > 0
        assert monitor.peak_nvm_outstanding > 0
        hot = monitor.top_keys_total()
        assert hot, "no hot keys observed on a write-heavy workload"
        # Hottest first, deterministic tie-break by key.
        counts = [count for _key, count in hot]
        assert counts == sorted(counts, reverse=True)

    def test_healthy_run_has_no_violations(self):
        _, monitor = _monitored_run()
        assert monitor.violations_total == 0
        assert monitor.violations == []

    def test_same_seed_same_health(self):
        _, first = _monitored_run()
        _, second = _monitored_run()
        assert health_json(first) == health_json(second)

    def test_bounded_samples_count_dropped(self):
        monitor = HealthMonitor(interval_ns=2_000.0, max_samples=5)
        _, monitor = _monitored_run(monitor=monitor)
        assert len(monitor) == 5
        assert monitor.dropped == 15

    def test_stop_ends_sampling(self):
        cluster, monitor = _monitored_run()
        taken = len(monitor)
        cluster.sim.run(until=cluster.sim.now + 20_000.0)
        assert len(monitor) == taken
        assert monitor.stopped_at_ns == 40_000.0

    def test_watch_echoes_dropped_counters(self):
        tracer = Tracer(max_records=10)
        journey = JourneyTracker(3, max_journeys=5)
        monitor = HealthMonitor(interval_ns=2_000.0)
        monitor.watch(tracer=tracer, journey=journey)
        model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
        from repro.obs import FanoutTracer
        config = ClusterConfig(servers=3, clients_per_server=3, seed=2021)
        cluster = Cluster(model, config=config, workload=WORKLOADS["A"],
                          tracer=FanoutTracer([tracer, journey]),
                          monitor=monitor)
        cluster.run(40_000.0, warmup_ns=4_000.0)
        last = monitor.samples[-1]
        assert last.tracer_dropped == tracer.dropped > 0
        assert last.journey_dropped == journey.dropped > 0

    def test_top_k_zero_disables_the_sketch(self):
        monitor = HealthMonitor(interval_ns=2_000.0, top_k=0)
        _, monitor = _monitored_run(monitor=monitor)
        assert all(s.top_keys == () for s in monitor.samples)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(interval_ns=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(max_samples=0)
        with pytest.raises(ValueError):
            HealthMonitor(top_k=-1)

    def test_double_attach_rejected(self):
        cluster, monitor = _monitored_run()
        with pytest.raises(RuntimeError):
            monitor.attach(cluster)


class TestProbeConfiguration:
    def test_default_model_enables_all_probes(self):
        _, monitor = _monitored_run()
        assert monitor.probes == {"applied_monotonic": True,
                                  "persisted_monotonic": True,
                                  "vp_before_dp": True}

    def test_transactional_disables_revert_sensitive_probes(self):
        model = DdpModel(Consistency.TRANSACTIONAL, Persistency.SYNCHRONOUS)
        _, monitor = _monitored_run(model=model)
        assert monitor.probes["applied_monotonic"] is False
        assert monitor.probes["vp_before_dp"] is False
        assert monitor.probes["persisted_monotonic"] is True

    def test_strict_disables_vp_before_dp(self):
        model = DdpModel(Consistency.CAUSAL, Persistency.STRICT)
        _, monitor = _monitored_run(model=model)
        assert monitor.probes["vp_before_dp"] is False
        assert monitor.probes["applied_monotonic"] is True

    @pytest.mark.parametrize("model", [
        DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
        DdpModel(Consistency.TRANSACTIONAL, Persistency.STRICT),
        DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL),
    ], ids=str)
    def test_enabled_probes_stay_clean_across_models(self, model):
        _, monitor = _monitored_run(model=model)
        assert monitor.violations_total == 0


# -- rigged cluster for the violation path ----------------------------------

class _FakeReplica:
    def __init__(self, key):
        self.key = key
        self.applied_version = (0, 0)
        self.persisted_version = (0, 0)


class _FakeEngine:
    causal_buffer_len = 0
    outstanding_write_count = 0
    inflight_round_count = 0

    def __init__(self):
        self.replicas = [_FakeReplica(1)]


class _FakeNvm:
    outstanding = 0
    banks_busy = 0


class _FakeMemory:
    nvm = _FakeNvm()


class _FakeNode:
    memory = _FakeMemory()


class _FakeCluster:
    def __init__(self, model):
        self.sim = Simulator()
        self.model = model
        self.engines = [_FakeEngine()]
        self.nodes = [_FakeNode()]


class TestInvariantProbes:
    def _rigged(self, model=None):
        cluster = _FakeCluster(model or DdpModel(Consistency.CAUSAL,
                                                 Persistency.SYNCHRONOUS))
        monitor = HealthMonitor(interval_ns=10.0)
        monitor.attach(cluster)
        return cluster, monitor, cluster.engines[0].replicas[0]

    def test_applied_regression_is_caught(self):
        cluster, monitor, replica = self._rigged()
        replica.applied_version = (2, 0)
        replica.persisted_version = (2, 0)
        cluster.sim.call_at(15.0, lambda: setattr(replica,
                                                  "applied_version", (1, 0)))
        cluster.sim.run(until=25.0)
        probes = [v.probe for v in monitor.violations]
        assert "applied_monotonic" in probes
        violation = monitor.violations[0]
        assert (violation.node, violation.key) == (0, 1)
        assert "(2, 0) -> (1, 0)" in violation.detail

    def test_persisted_regression_is_caught(self):
        cluster, monitor, replica = self._rigged()
        replica.applied_version = (3, 0)
        replica.persisted_version = (3, 0)
        cluster.sim.call_at(15.0, lambda: setattr(replica,
                                                  "persisted_version",
                                                  (2, 0)))
        cluster.sim.run(until=25.0)
        assert any(v.probe == "persisted_monotonic"
                   for v in monitor.violations)

    def test_persisted_ahead_of_applied_is_caught(self):
        cluster, monitor, replica = self._rigged()
        replica.applied_version = (1, 0)
        replica.persisted_version = (2, 0)
        cluster.sim.run(until=15.0)
        assert any(v.probe == "vp_before_dp" for v in monitor.violations)

    def test_disabled_probe_stays_silent(self):
        model = DdpModel(Consistency.TRANSACTIONAL, Persistency.STRICT)
        cluster, monitor, replica = self._rigged(model)
        replica.applied_version = (1, 0)
        replica.persisted_version = (5, 0)  # would violate vp_before_dp
        cluster.sim.run(until=35.0)
        assert monitor.violations_total == 0

    def test_violations_are_bounded(self):
        cluster, monitor, replica = self._rigged()
        monitor.max_violations = 2
        replica.applied_version = (1, 0)
        replica.persisted_version = (9, 0)  # violates at every tick
        cluster.sim.run(until=55.0)
        assert len(monitor.violations) == 2
        assert monitor.violations_dropped == 3
        assert monitor.violations_total == 5

    def test_violations_surface_in_samples_and_json(self):
        cluster, monitor, replica = self._rigged()
        replica.applied_version = (1, 0)
        replica.persisted_version = (2, 0)
        cluster.sim.run(until=25.0)
        assert monitor.samples[-1].violations_total > 0
        doc = health_json(monitor)
        assert doc["violations"]["total"] == monitor.violations_total
        assert doc["violations"]["events"][0]["probe"] == "vp_before_dp"


class TestExportShaping:
    def test_health_json_shape(self):
        cluster, monitor = _monitored_run()
        doc = health_json(monitor)
        assert doc["interval_ns"] == 2_000.0
        assert doc["samples"] == len(monitor)
        assert doc["dropped"] == 0
        series = doc["series"]
        assert len(series["time_ns"]) == len(monitor)
        assert len(series["event_queue_depth"]) == len(monitor)
        assert set(series["per_node"]) == {"0", "1", "2"}
        for node_series in series["per_node"].values():
            assert set(node_series) == {"nvm_outstanding", "nvm_banks_busy",
                                        "causal_buffer", "inflight_writes",
                                        "inflight_rounds"}
        assert doc["probes"] == monitor.probes
        assert doc["top_keys"] == [[k, c]
                                   for k, c in monitor.top_keys_total()]

    def test_chrome_counter_events(self):
        cluster, monitor = _monitored_run()
        events = health_chrome_events(monitor)
        kernel = [e for e in events if e["name"] == "health.kernel"]
        pressure = [e for e in events if e["name"] == "health.pressure"]
        assert len(kernel) == len(monitor)
        assert len(pressure) == len(monitor) * len(cluster.nodes)
        assert all(e["ph"] == "C" for e in kernel + pressure)
        assert all(e["pid"] == 0 for e in kernel)
        assert {e["pid"] for e in pressure} == {1, 2, 3}
        # Counters ride the dedicated health lane.
        from repro.obs.export import _lane_of
        assert {e["tid"] for e in events} == {_lane_of("health")}

    def test_violations_export_as_instants(self):
        cluster = _FakeCluster(DdpModel(Consistency.CAUSAL,
                                        Persistency.SYNCHRONOUS))
        monitor = HealthMonitor(interval_ns=10.0)
        monitor.attach(cluster)
        replica = cluster.engines[0].replicas[0]
        replica.applied_version = (1, 0)
        replica.persisted_version = (2, 0)
        cluster.sim.run(until=15.0)
        instants = [e for e in health_chrome_events(monitor)
                    if e["name"] == "health_violation"]
        assert instants
        assert instants[0]["ph"] == "i"
        assert instants[0]["args"]["probe"] == "vp_before_dp"
