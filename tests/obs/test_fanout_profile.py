"""Tests for the fan-out tracer and the kernel profiler."""

from repro.obs import FanoutTracer, KernelProfile
from repro.sim.engine import Simulator
from repro.sim.trace import NullTracer, Tracer


class TestFanoutTracer:
    def test_forwards_to_every_sink(self):
        a, b = Tracer(), Tracer()
        fanout = FanoutTracer([a, b])
        fanout.emit(1.0, "msg_send", node=0, msg="INV")
        fanout.span(2.0, 5.0, "read_stall", node=1)
        assert len(a) == 2 and len(b) == 2
        assert a.records[1].dur == 3.0

    def test_none_sinks_are_dropped(self):
        tracer = Tracer()
        fanout = FanoutTracer([None, tracer, None])
        fanout.emit(1.0, "x")
        assert len(fanout) == 1

    def test_enabled_iff_any_sink_enabled(self):
        assert FanoutTracer([Tracer()]).enabled
        assert not FanoutTracer([NullTracer()]).enabled
        assert not FanoutTracer([]).enabled
        assert FanoutTracer([NullTracer(), Tracer()]).enabled

    def test_empty_tracer_is_not_mistaken_for_disabled(self):
        """An empty Tracer is len() == 0 (falsy); components must test
        ``is not None``, not truthiness, or tracing silently drops."""
        from repro.core.engine import ProtocolNode  # noqa: F401 - import guard
        from repro.net.network import Network, NetworkConfig

        tracer = Tracer()
        assert not tracer  # the trap: empty tracer is falsy
        network = Network(Simulator(), NetworkConfig(), tracer=tracer)
        assert network.tracer is tracer


class TestKernelProfile:
    def _run_tiny_sim(self, profile):
        sim = Simulator()
        profile.attach(sim)

        def worker():
            for _ in range(5):
                yield sim.timeout(10.0)

        for _ in range(3):
            sim.process(worker())
        sim.run(until=100.0)
        profile.stop(sim.now)
        return sim

    def test_counts_events_and_processes(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        assert profile.processes_spawned == 3
        assert profile.events_processed >= 15  # 3 workers x 5 timeouts
        assert profile.heap_peak >= 1
        assert profile.wall_seconds > 0.0
        assert profile.sim_ns == 100.0

    def test_stop_is_idempotent(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        frozen = profile.wall_seconds
        profile.stop(100.0)
        assert profile.wall_seconds == frozen

    def test_derived_rates_and_snapshot(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        assert profile.events_per_wall_second > 0.0
        assert profile.wall_seconds_per_sim_second > 0.0
        snapshot = profile.snapshot()
        assert snapshot["events_processed"] == profile.events_processed
        assert snapshot["heap_peak"] == profile.heap_peak
        assert "kernel:" in profile.format()

    def test_detached_simulator_profiles_nothing(self):
        sim = Simulator()
        assert sim.profile is None

        def worker():
            yield sim.timeout(1.0)

        sim.process(worker())
        sim.run(until=10.0)  # must not raise, no profile attached
