"""Tests for the fan-out tracer and the kernel profiler."""

import pytest

from repro.obs import FanoutTracer, KernelProfile
from repro.sim.engine import Simulator
from repro.sim.trace import NullTracer, Tracer


class TestFanoutTracer:
    def test_forwards_to_every_sink(self):
        a, b = Tracer(), Tracer()
        fanout = FanoutTracer([a, b])
        fanout.emit(1.0, "msg_send", node=0, msg="INV")
        fanout.span(2.0, 5.0, "read_stall", node=1)
        assert len(a) == 2 and len(b) == 2
        assert a.records[1].dur == 3.0

    def test_none_sinks_are_dropped(self):
        tracer = Tracer()
        fanout = FanoutTracer([None, tracer, None])
        fanout.emit(1.0, "x")
        assert len(fanout) == 1

    def test_enabled_iff_any_sink_enabled(self):
        assert FanoutTracer([Tracer()]).enabled
        assert not FanoutTracer([NullTracer()]).enabled
        assert not FanoutTracer([]).enabled
        assert FanoutTracer([NullTracer(), Tracer()]).enabled

    def test_empty_tracer_is_not_mistaken_for_disabled(self):
        """An empty Tracer is len() == 0 (falsy); components must test
        ``is not None``, not truthiness, or tracing silently drops."""
        from repro.core.engine import ProtocolNode  # noqa: F401 - import guard
        from repro.net.network import Network, NetworkConfig

        tracer = Tracer()
        assert not tracer  # the trap: empty tracer is falsy
        network = Network(Simulator(), NetworkConfig(), tracer=tracer)
        assert network.tracer is tracer


class TestKernelProfile:
    def _run_tiny_sim(self, profile):
        sim = Simulator()
        profile.attach(sim)

        def worker():
            for _ in range(5):
                yield sim.timeout(10.0)

        for _ in range(3):
            sim.process(worker())
        sim.run(until=100.0)
        profile.stop(sim.now)
        return sim

    def test_counts_events_and_processes(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        assert profile.processes_spawned == 3
        assert profile.events_processed >= 15  # 3 workers x 5 timeouts
        assert profile.heap_peak >= 1
        assert profile.wall_seconds > 0.0
        assert profile.sim_ns == 100.0

    def test_stop_is_idempotent(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        frozen = profile.wall_seconds
        profile.stop(100.0)
        assert profile.wall_seconds == frozen

    def test_derived_rates_and_snapshot(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        assert profile.events_per_wall_second > 0.0
        assert profile.wall_seconds_per_sim_second > 0.0
        snapshot = profile.snapshot()
        assert snapshot["events_processed"] == profile.events_processed
        assert snapshot["heap_peak"] == profile.heap_peak
        assert "kernel:" in profile.format()

    def test_detached_simulator_profiles_nothing(self):
        sim = Simulator()
        assert sim.profile is None

        def worker():
            yield sim.timeout(1.0)

        sim.process(worker())
        sim.run(until=10.0)  # must not raise, no profile attached

    def test_snapshot_mid_run_reports_live_wall_clock(self):
        """Before stop(), wall_seconds has accumulated nothing — a live
        snapshot (the HealthMonitor's view) must fold in the in-flight
        interval instead of reporting 0 events/sec forever."""
        profile = KernelProfile()
        profile.start()
        while profile.wall_elapsed_seconds == 0.0:
            pass  # perf_counter ticks fast; one lap is enough
        profile.events_processed = 1000
        assert profile.wall_seconds == 0.0  # the bug this guards against
        snapshot = profile.snapshot()
        assert snapshot["wall_seconds"] > 0.0
        assert snapshot["events_per_wall_second"] > 0.0
        assert profile.events_per_wall_second > 0.0

    def test_stop_freezes_the_live_clock(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        frozen = profile.wall_elapsed_seconds
        assert frozen == profile.wall_seconds  # stopped: no drift
        assert profile.snapshot()["wall_seconds"] == frozen

    def test_loop_wall_and_attribution_sections(self):
        profile = KernelProfile()
        self._run_tiny_sim(profile)
        snapshot = profile.snapshot()
        assert 0.0 < snapshot["loop_wall_seconds"] <= \
            profile.wall_elapsed_seconds
        kinds = snapshot["attribution"]["by_event_kind"]
        assert kinds["timeout"]["count"] == 15  # 3 workers x 5 timeouts
        assert kinds["process_start"]["count"] == 3
        assert sum(k["count"] for k in kinds.values()) == \
            snapshot["events_processed"]
        # No protocol engine in a tiny sim: no handler rows.
        assert snapshot["attribution"]["by_msg_type"] == {}
        assert snapshot["attribution"]["attributed_fraction"] == \
            pytest.approx(1.0, abs=0.05)

    def test_drive_handler_is_transparent(self):
        """The per-MsgType driver forwards yields, sends, and return
        values unchanged while accumulating per-label stats."""
        sim = Simulator()
        profile = KernelProfile()
        profile.attach(sim)
        seen = []

        def handler():
            value = yield sim.timeout(2.0, "tick")
            seen.append(value)
            yield sim.timeout(3.0)

        def wrapper():
            yield from profile.drive_handler("INV", handler())

        sim.process(wrapper())
        sim.run()
        profile.stop(sim.now)

        assert seen == ["tick"]
        assert sim.now == 5.0
        assert profile.by_msg_type["INV"][0] == 1  # one message
        assert profile.by_msg_type["INV"][2] == 2  # two resume segments
        assert profile.by_msg_type["INV"][1] > 0.0  # some wall accrued

    def test_drive_handler_propagates_exceptions(self):
        sim = Simulator()
        profile = KernelProfile()
        profile.attach(sim)

        def handler():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def wrapper():
            with pytest.raises(ValueError, match="boom"):
                yield from profile.drive_handler("ACK", handler())

        sim.process(wrapper())
        sim.run()
        assert profile.by_msg_type["ACK"][0] == 1
