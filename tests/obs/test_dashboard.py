"""The sweep dashboard: self-containment and value fidelity.

The dashboard's contract is that it is one static file whose numbers
are the merged report's numbers — every heatmap cell carries the
seed-averaged summary value as a machine-checkable ``data-value``.
"""

import json
import re

import pytest

from repro.core.model import all_ddp_models
from repro.obs.dashboard import (build_dashboard, load_bench_dir,
                                 write_dashboard)
from repro.obs.sweep import build_sweep_report, matrix_specs, run_sweep

DURATION = 20_000.0
WARMUP = 2_000.0


@pytest.fixture(scope="module")
def sweep_doc():
    specs = matrix_specs(all_ddp_models()[:4], [1, 2],
                         duration_ns=DURATION, warmup_ns=WARMUP,
                         sections=("journeys", "profile"))
    return build_sweep_report(run_sweep(specs))


@pytest.fixture(scope="module")
def page(sweep_doc):
    return build_dashboard(sweep_doc)


def cell_values(page, metric):
    pattern = (rf'data-metric="{metric}" data-cell="([^"]+)" '
               rf'data-value="([^"]+)"')
    return {cell: float(value)
            for cell, value in re.findall(pattern, page)}


class TestSelfContained:
    def test_no_external_references(self, page):
        for needle in ("http://", "https://", "src=", "href=", "@import"):
            assert needle not in page, needle

    def test_single_valid_html_document(self, page):
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<html") == page.count("</html>") == 1
        assert "<style>" in page and "<script>" in page

    def test_write_dashboard(self, tmp_path, page):
        path = tmp_path / "dash.html"
        write_dashboard(str(path), page)
        assert path.read_text() == page


class TestHeatmapFidelity:
    def test_every_model_has_a_cell_per_metric(self, sweep_doc, page):
        models = {(c["consistency"], c["persistency"])
                  for c in sweep_doc["cells"]}
        for metric in ("throughput_ops_per_s", "mean_write_ns",
                       "mean_read_ns"):
            values = cell_values(page, metric)
            assert len(values) == len(models), metric

    def test_cell_values_are_seed_means_of_the_report(self, sweep_doc,
                                                      page):
        values = cell_values(page, "throughput_ops_per_s")
        for (cons, pers) in {(c["consistency"], c["persistency"])
                             for c in sweep_doc["cells"]}:
            samples = [c["summary"]["throughput_ops_per_s"]
                       for c in sweep_doc["cells"]
                       if (c["consistency"], c["persistency"])
                       == (cons, pers)]
            expected = sum(samples) / len(samples)
            assert values[f"{cons}/{pers}"] == pytest.approx(expected)

    def test_table_view_present(self, page):
        assert page.count("Table view") >= 3


class TestSections:
    def test_waterfalls_rendered_for_journeys(self, page):
        assert "Journey waterfalls" in page
        assert " VP " or "VP" in page
        for bucket in ("network", "coord_wait", "nvm_queue", "device",
                       "compute"):
            assert bucket in page

    def test_kernel_attribution_rendered_for_profiles(self, page):
        assert "Kernel attribution" in page
        assert "msg_delivery" in page

    def test_sections_absent_without_data(self):
        specs = matrix_specs(all_ddp_models()[:1], [1],
                             duration_ns=DURATION, warmup_ns=WARMUP)
        page = build_dashboard(build_sweep_report(run_sweep(specs)))
        assert "Journey waterfalls" not in page
        assert "Kernel attribution" not in page


class TestErrorCells:
    def test_error_cell_marked_with_icon_and_label(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "causal:eventual")
        from repro.core.model import Consistency, DdpModel, Persistency
        models = [DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL),
                  DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL)]
        specs = matrix_specs(models, [1], duration_ns=DURATION,
                             warmup_ns=WARMUP)
        page = build_dashboard(build_sweep_report(run_sweep(specs)))
        assert "✗ error" in page
        assert "Errored cells" in page
        assert "RuntimeError" in page


class TestBaselineDiff:
    def test_identical_sweeps_report_no_regression(self, sweep_doc):
        page = build_dashboard(sweep_doc, baseline=sweep_doc)
        assert "✓ no regression" in page

    def test_regression_colored_by_verdict(self, sweep_doc):
        worse = json.loads(json.dumps(sweep_doc))
        for cell in worse["cells"]:
            cell["summary"]["throughput_ops_per_s"] *= 0.5
        page = build_dashboard(worse, baseline=sweep_doc)
        assert "✗ regression" in page
        assert 'class="badge crit"' in page

    def test_incomparable_baseline_becomes_banner(self, sweep_doc):
        other = json.loads(json.dumps(sweep_doc))
        other["meta"]["config_hash"] = "0000000000000000"
        page = build_dashboard(sweep_doc, baseline=other)
        assert "not comparable" in page


class TestBenchTrends:
    def bench(self, name, value, config_hash="abc"):
        return {"schema": "repro.bench/1", "bench": name,
                "config_hash": config_hash,
                "metrics": {"a": {"throughput_ops_per_s": value},
                            "b": {"throughput_ops_per_s": value * 2}}}

    def test_sparklines_from_matching_fingerprints(self, sweep_doc):
        docs = [("BENCH_one.json", self.bench("fig6", 1e6)),
                ("BENCH_two.json", self.bench("fig6", 2e6))]
        page = build_dashboard(sweep_doc, bench_docs=docs)
        assert "Bench trends" in page
        assert "polyline" in page
        assert "across 2 archives" in page

    def test_fingerprint_mismatch_listed_not_mixed(self, sweep_doc):
        # The last file in name order is the reference; earlier archives
        # with a different fingerprint are excluded and listed.
        docs = [("BENCH_1_old.json", self.bench("fig6", 1e6, "old")),
                ("BENCH_2_new.json", self.bench("fig6", 2e6, "new"))]
        page = build_dashboard(sweep_doc, bench_docs=docs)
        assert "fingerprint mismatch" in page
        assert "BENCH_1_old.json" in page

    def test_load_bench_dir_skips_garbage(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text(
            json.dumps(self.bench("x", 1.0)))
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "other.json").write_text("{}")
        docs = load_bench_dir(str(tmp_path))
        assert [name for name, _ in docs] == ["BENCH_good.json"]


class TestAccessibility:
    def test_dark_mode_media_query(self, page):
        assert "prefers-color-scheme: dark" in page

    def test_legend_present_for_waterfall_buckets(self, page):
        assert 'class="legend"' in page

    def test_tabular_numbers(self, page):
        assert "tabular-nums" in page
