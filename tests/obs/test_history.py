"""History recorder and ``repro.history/1`` serialization."""

import dataclasses

import pytest

from repro.obs.history import (HISTORY_SCHEMA, History, HistoryOpRecord,
                               HistoryRecorder, load_history,
                               write_history)


class _FakeSim:
    def __init__(self):
        self.now = 0.0


def _recorder(max_ops=1_000_000):
    rec = HistoryRecorder(max_ops=max_ops)
    rec.sim = _FakeSim()
    return rec


class TestRecorder:
    def test_invoke_complete_round(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="write", key=5, value=42)
        rec.sim.now = 1500.0
        rec.complete(3, version=(7, 1))
        (op,) = rec.ops
        assert op.op == "write" and op.key == 5 and op.version == (7, 1)
        assert op.invoke_us == 0.0 and op.respond_us == 1.5
        assert op.ok and not op.pending

    def test_run_end_leaves_op_pending(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="read", key=5)
        rec.finalize()
        (op,) = rec.ops
        assert op.pending and op.respond_us is None and not op.severed

    def test_severed_op_flagged(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="write", key=5, value=1)
        rec.sever(3)
        (op,) = rec.ops
        assert op.severed and op.pending
        assert rec.severed_ops == 1

    def test_failed_op_marked_not_ok(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="read", key=5, txn_id=9)
        rec.fail(3)
        (op,) = rec.ops
        assert not op.ok and op.respond_us is not None

    def test_txn_outcome_stamped_retroactively(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="write", key=5, txn_id=9)
        rec.complete(3, version=(1, 1))
        rec.invoke(client=3, node=1, op="write", key=6, txn_id=9)
        rec.complete(3, version=(1, 1))
        rec.set_txn_outcome(9, committed=False)
        assert [op.committed for op in rec.ops] == [False, False]

    def test_restart_opens_degraded_session(self):
        rec = _recorder()
        rec.invoke(client=3, node=1, op="write", key=5)
        rec.complete(3, version=(1, 1))
        rec.restart_session(3)
        rec.invoke(client=3, node=1, op="read", key=5)
        rec.complete(3, version=(1, 1))
        first, second = rec.ops
        assert (first.session, first.degraded) == (0, False)
        assert (second.session, second.degraded) == (1, True)

    def test_bound_drops_and_truncates(self):
        rec = _recorder(max_ops=2)
        for i in range(4):
            rec.invoke(client=i, node=0, op="read", key=i)
            rec.complete(i, version=(1, 0))
        assert len(rec.ops) == 2
        assert rec.dropped == 2
        assert rec.truncated
        assert rec.history().truncated


class TestSerialization:
    def _sample(self):
        ops = [
            HistoryOpRecord(index=0, client=1, session=0, node=0,
                            op="write", key=5, value=42, invoke_us=0.0,
                            respond_us=1.0, version=(1, 0)),
            HistoryOpRecord(index=1, client=2, session=1, node=1,
                            op="read", key=5, value=42, invoke_us=2.0,
                            respond_us=3.0, version=(1, 0),
                            degraded=True),
            HistoryOpRecord(index=2, client=1, session=0, node=0,
                            op="write", key=6, value=7, invoke_us=4.0,
                            severed=True),
            HistoryOpRecord(index=3, client=3, session=0, node=2,
                            op="persist", key=None, value=None,
                            invoke_us=5.0, respond_us=6.0,
                            scope_id=3_000_000, committed=True),
        ]
        recovered = {"merged": {"5": {"version": [1, 0], "value": 42}},
                     "per_node": {"0": {}}}
        return History(meta={"consistency": "causal", "seed": 2021},
                       ops=ops, recovered=recovered)

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        original = self._sample()
        write_history(path, original)
        loaded = load_history(path)
        assert loaded.meta == original.meta
        assert loaded.recovered == original.recovered
        assert loaded.dropped == 0
        assert [dataclasses.asdict(op) for op in loaded.ops] == \
            [dataclasses.asdict(op) for op in original.ops]
        assert loaded.recovered_versions() == {5: (1, 0)}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_history(str(path))

    def test_non_jsonl_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSONL"):
            load_history(str(path))

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": "repro.run_report/6"}\n')
        with pytest.raises(ValueError, match=HISTORY_SCHEMA.replace(
                "/", "/")):
            load_history(str(path))

    def test_declared_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        original = self._sample()
        write_history(path, original)
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[:-1])      # drop one op line
        with pytest.raises(ValueError, match="declares"):
            load_history(path)

    def test_bad_op_line_rejected(self, tmp_path):
        path = str(tmp_path / "h.jsonl")
        write_history(path, self._sample())
        with open(path, "a") as fh:
            fh.write("garbage\n")
        with pytest.raises(ValueError, match="bad op line"):
            load_history(path)
