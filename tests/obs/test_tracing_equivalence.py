"""Tracing must observe the simulation, never perturb it.

Two properties the whole subsystem depends on:

* running with a tracer attached produces *exactly* the run that
  running without one does (same summary, same store state, same
  simulated clock); and
* the same seed produces byte-identical trace artifacts, so traces
  diff cleanly across code changes.
"""

import dataclasses

import pytest

from repro.analysis.points import PointsTracker
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.core.model import Consistency, DdpModel, Persistency
from repro.obs import (FanoutTracer, HealthMonitor, JourneyTracker,
                       KernelProfile, write_chrome_trace)
from repro.sim.trace import Tracer
from repro.workload.ycsb import WORKLOADS

MODELS = [
    DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS),
    DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL),
    DdpModel(Consistency.TRANSACTIONAL, Persistency.STRICT),
]


def _run(model, tracer=None, profile=None, monitor=None, seed=2021,
         faults=None, history=None):
    config = ClusterConfig(servers=3, clients_per_server=3, seed=seed)
    cluster = Cluster(model, config=config, workload=WORKLOADS["A"],
                      tracer=tracer, profile=profile, monitor=monitor,
                      faults=faults, history=history)
    summary = cluster.run(40_000.0, warmup_ns=4_000.0)
    stores = [
        {replica.key: (replica.applied_version, replica.applied_value,
                       replica.persisted_version, replica.persisted_value)
         for replica in engine.replicas}
        for engine in cluster.engines
    ]
    return cluster, summary, stores


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_summary_store_and_clock_identical(self, model):
        cluster_off, summary_off, stores_off = _run(model)
        tracer = FanoutTracer([Tracer(), PointsTracker(3)])
        cluster_on, summary_on, stores_on = _run(model, tracer=tracer)
        assert len(tracer) > 0, "tracer saw nothing; wiring is broken"
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on
        assert cluster_off.sim.now == cluster_on.sim.now

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_journey_tracking_does_not_perturb(self, model):
        """A JourneyTracker attached (alone or fanned out with the other
        sinks) reproduces the untracked run exactly — journey tracking
        off is the seed behavior, on is purely observational."""
        cluster_off, summary_off, stores_off = _run(model)
        journeys = JourneyTracker(3)
        tracer = FanoutTracer([Tracer(), PointsTracker(3), journeys])
        cluster_on, summary_on, stores_on = _run(model, tracer=tracer)
        assert journeys.journeys, "journey tracker saw no writes"
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on
        assert cluster_off.sim.now == cluster_on.sim.now

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_health_monitoring_does_not_perturb(self, model):
        """A monitored run reproduces the unmonitored run exactly.

        The monitor schedules its own ticks on the simulation clock, so
        this is the strongest non-perturbation claim in the suite: extra
        kernel events may consume sequence numbers but must not reorder
        or retime anyone else's."""
        cluster_off, summary_off, stores_off = _run(model)
        monitor = HealthMonitor(interval_ns=2_000.0)
        cluster_on, summary_on, stores_on = _run(model, monitor=monitor)
        assert len(monitor) > 0, "monitor never sampled; wiring is broken"
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on
        assert cluster_off.sim.now == cluster_on.sim.now

    def test_health_monitoring_trace_byte_identical(self, tmp_path):
        """The trace a monitored run records is byte-for-byte the trace
        an unmonitored run records — monitoring changes nothing the
        tracer can see (the acceptance bar for `--health`)."""
        model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
        contents = []
        for monitored in (False, True):
            tracer = Tracer()
            monitor = (HealthMonitor(interval_ns=2_000.0)
                       if monitored else None)
            _run(model, tracer=tracer, monitor=monitor)
            path = tmp_path / f"m{monitored}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped)
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]

    def test_profiling_does_not_perturb(self):
        model = MODELS[1]
        _, summary_off, stores_off = _run(model)
        profile = KernelProfile()
        _, summary_on, stores_on = _run(model, profile=profile)
        assert profile.events_processed > 0
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_profiled_trace_byte_identical(self, model, tmp_path):
        """The acceptance bar for the performance observatory: a run
        with the full attribution profiler attached — per-kind wall
        bucketing in the step loop, the per-MsgType handler driver in
        dispatch — records byte-for-byte the trace of an unprofiled run.
        The counters observe the schedule; they never become part of it."""
        contents = []
        for profiled in (False, True):
            tracer = Tracer()
            profile = KernelProfile() if profiled else None
            _run(model, tracer=tracer, profile=profile)
            path = tmp_path / f"p{profiled}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped)
            contents.append(path.read_bytes())
            if profiled:
                attribution = profile.snapshot()["attribution"]
                assert attribution["by_event_kind"], \
                    "profiler saw no events; wiring is broken"
                assert attribution["by_msg_type"], \
                    "handler driver never engaged; wiring is broken"
        assert contents[0] == contents[1]


class TestHistoryRecorderEquivalence:
    """The audit history recorder is a pure observer at the client
    boundary: attached, it reproduces the unrecorded run exactly (the
    acceptance bar for `--history-out` / `--audit`)."""

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_recorder_does_not_perturb(self, model):
        from repro.obs.history import HistoryRecorder

        cluster_off, summary_off, stores_off = _run(model)
        recorder = HistoryRecorder()
        cluster_on, summary_on, stores_on = _run(model, history=recorder)
        assert len(recorder) > 0, "recorder saw nothing; wiring is broken"
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on
        assert cluster_off.sim.now == cluster_on.sim.now

    def test_recorder_trace_byte_identical(self, tmp_path):
        from repro.obs.history import HistoryRecorder

        model = DdpModel(Consistency.CAUSAL, Persistency.SYNCHRONOUS)
        contents = []
        for recorded in (False, True):
            tracer = Tracer()
            recorder = HistoryRecorder() if recorded else None
            _run(model, tracer=tracer, history=recorder)
            path = tmp_path / f"h{recorded}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped)
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]


class TestFaultInjectionEquivalence:
    """The injector obeys the same discipline as the monitor: attached
    but idle, it changes nothing; active, it is exactly reproducible."""

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_empty_plan_does_not_perturb(self, model):
        """A fault injector with an empty plan — membership wired,
        round watchdogs armed, network hook absent — reproduces the
        uninjected run exactly."""
        from repro.faults import FaultInjector, FaultPlan

        cluster_off, summary_off, stores_off = _run(model)
        cluster_on, summary_on, stores_on = _run(
            model, faults=FaultInjector(FaultPlan()))
        assert cluster_on.membership is not None
        assert dataclasses.asdict(summary_off) == \
            pytest.approx(dataclasses.asdict(summary_on), nan_ok=True)
        assert stores_off == stores_on
        assert cluster_off.sim.now == cluster_on.sim.now

    def test_empty_plan_trace_byte_identical(self, tmp_path):
        """The acceptance bar for `--faults`: a fault-free run with the
        injector attached records byte-for-byte the trace of a plain
        run, even though every protocol round armed a timeout watchdog."""
        from repro.faults import FaultInjector, FaultPlan

        model = DdpModel(Consistency.LINEARIZABLE, Persistency.SYNCHRONOUS)
        contents = []
        for injected in (False, True):
            tracer = Tracer()
            faults = FaultInjector(FaultPlan()) if injected else None
            _run(model, tracer=tracer, faults=faults)
            path = tmp_path / f"f{injected}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped)
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]

    @pytest.mark.parametrize("model", MODELS, ids=str)
    def test_same_seed_same_plan_byte_identical(self, model, tmp_path):
        """Same workload seed + same fault plan => byte-identical traces,
        across a plan that exercises crash-restart, message loss, and
        duplication (the deterministic-replay guarantee)."""
        from repro.faults import FaultInjector, load_fault_plan

        plan_dict = {
            "seed": 9,
            "events": [
                {"kind": "drop", "at_us": 6, "duration_us": 8,
                 "probability": 0.1},
                {"kind": "duplicate", "at_us": 10, "duration_us": 8,
                 "probability": 0.2},
                {"kind": "crash", "node": 1, "at_us": 18,
                 "restart_after_us": 10},
            ],
        }
        contents = []
        for run in ("a", "b"):
            tracer = Tracer()
            injector = FaultInjector(load_fault_plan(dict(plan_dict)))
            _run(model, tracer=tracer, faults=injector)
            assert injector.crashes == 1 and injector.restarts == 1
            path = tmp_path / f"{run}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped)
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]


class TestTraceDeterminism:
    def test_same_seed_byte_identical_trace(self, tmp_path):
        model = DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL)
        paths = []
        for run in ("a", "b"):
            tracer = Tracer()
            _run(model, tracer=tracer)
            path = tmp_path / f"{run}.json"
            write_chrome_trace(str(path), tracer.records,
                               dropped=tracer.dropped,
                               meta={"model": str(model), "seed": 2021})
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_different_seed_differs(self, tmp_path):
        model = DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL)
        contents = []
        for seed in (2021, 2022):
            tracer = Tracer()
            _run(model, tracer=tracer, seed=seed)
            path = tmp_path / f"s{seed}.json"
            write_chrome_trace(str(path), tracer.records)
            contents.append(path.read_bytes())
        assert contents[0] != contents[1]

    def test_fork_seeds_survive_hash_randomization(self):
        """fork() must not use the per-process salted builtin hash();
        pin a derived seed so any regression fails on every run."""
        from repro.sim.rng import SeededStream

        child = SeededStream(2021, "cluster").fork("client0")
        grandchild = SeededStream(7).fork("a").fork("b")
        assert child.seed == 6884590832609390355
        assert grandchild.seed == 5479018391769822667
