"""The sweep observatory: deterministic merge, parallelism, failure.

The load-bearing contract: ``run_sweep`` with any worker count produces
the same merged ``repro.sweep_report/1`` bytes, a crashed worker
becomes a schema-valid ``error`` cell rather than a torn artifact, and
progress output stays line-oriented off a TTY.
"""

import io
import json

import pytest

from repro.core.model import (Consistency, DdpModel, Persistency,
                              all_ddp_models)
from repro.obs.schemas import SWEEP_REPORT_SCHEMA, validate_artifact
from repro.obs.sweep import (CellResult, CellSpec, SweepProgress,
                             build_sweep_report, matrix_specs, run_cell,
                             run_sweep, strip_wall_clock, sweep_meta,
                             sweep_summaries, write_sweep_report)

DURATION = 20_000.0
WARMUP = 2_000.0


def specs_for(models, seeds=(1,), sections=()):
    return matrix_specs(models, seeds, duration_ns=DURATION,
                        warmup_ns=WARMUP, sections=sections)


def report_bytes(doc):
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)


class TestCellSpec:
    def test_sort_key_ignores_construction_order(self):
        specs = specs_for(list(reversed(all_ddp_models()[:6])), seeds=(2, 1))
        assert specs == sorted(specs, key=lambda s: s.sort_key)

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep section"):
            CellSpec("causal", "eventual", 1, sections=("bogus",))

    def test_label_names_model_and_seed(self):
        spec = CellSpec("causal", "eventual", 7)
        assert "Causal" in spec.label and "seed=7" in spec.label


class TestStripWallClock:
    def test_removes_wall_keys_recursively(self):
        doc = {"wall_seconds": 1.0, "events_processed": 5,
               "nested": {"checker_wall_seconds": 2.0, "ok": True,
                          "details": [{"wall_ms": 3.0, "rule": "x"}]}}
        stripped = strip_wall_clock(doc)
        assert stripped == {"events_processed": 5,
                            "nested": {"ok": True,
                                       "details": [{"rule": "x"}]}}

    def test_report_contains_no_wall_clock(self):
        specs = specs_for(all_ddp_models()[:1],
                          sections=("journeys", "health", "profile",
                                    "audit"))
        text = report_bytes(build_sweep_report(run_sweep(specs)))
        for needle in ("wall_seconds", "wall_ms", "events_per_wall",
                       "attributed_fraction", "checker_wall"):
            assert needle not in text, needle


class TestDeterministicMerge:
    def test_workers_1_and_4_byte_identical(self):
        specs = specs_for(all_ddp_models()[:4], seeds=(1, 2),
                          sections=("journeys", "profile"))
        serial = build_sweep_report(run_sweep(specs, workers=1))
        parallel = build_sweep_report(run_sweep(specs, workers=4))
        assert report_bytes(serial) == report_bytes(parallel)

    def test_cells_sorted_by_key_not_completion(self):
        specs = specs_for(all_ddp_models()[:4], seeds=(2, 1))
        doc = build_sweep_report(run_sweep(specs, workers=2))
        keys = [(c["consistency"], c["persistency"], c["seed"])
                for c in doc["cells"]]
        assert keys == sorted(keys)

    def test_write_round_trips(self, tmp_path):
        specs = specs_for(all_ddp_models()[:1])
        doc = build_sweep_report(run_sweep(specs))
        path = tmp_path / "sweep.json"
        write_sweep_report(str(path), doc)
        assert json.loads(path.read_text()) == doc

    def test_meta_has_no_worker_count(self):
        specs = specs_for(all_ddp_models()[:2], seeds=(1, 2))
        meta = sweep_meta(specs)
        assert "workers" not in report_bytes(meta)
        assert meta["seeds"] == [1, 2]
        assert len(meta["models"]) == 2
        assert meta["config_hash"]

    def test_meta_requires_cells(self):
        with pytest.raises(ValueError):
            sweep_meta([])


class TestCellSections:
    def test_requested_sections_present(self):
        specs = specs_for(all_ddp_models()[:1],
                          sections=("journeys", "health", "profile",
                                    "audit"))
        cell = build_sweep_report(run_sweep(specs))["cells"][0]
        for section in ("journeys", "health", "profile", "audit"):
            assert section in cell, section
        assert cell["audit"]["usable"] is True
        assert cell["journeys"]["journeys"] > 0
        assert cell["profile"]["events_processed"] > 0

    def test_default_cells_are_summary_only(self):
        specs = specs_for(all_ddp_models()[:1])
        cell = build_sweep_report(run_sweep(specs))["cells"][0]
        assert "journeys" not in cell and "profile" not in cell
        assert cell["summary"]["requests"] > 0


class TestFailure:
    CRASH = DdpModel(Consistency.CAUSAL, Persistency.EVENTUAL)

    def rig(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", value)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crashed_cell_is_schema_valid_error_entry(self, monkeypatch,
                                                      workers):
        self.rig(monkeypatch, "causal:eventual")
        models = [self.CRASH,
                  DdpModel(Consistency.EVENTUAL, Persistency.EVENTUAL)]
        doc = build_sweep_report(run_sweep(specs_for(models),
                                           workers=workers))
        validate_artifact(doc, family="repro.sweep_report")
        assert doc["totals"] == {"cells": 2, "ok": 1, "errors": 1}
        error = [c for c in doc["cells"] if c["status"] == "error"][0]
        assert error["consistency"] == "causal"
        assert "RuntimeError" in error["error"]
        assert "summary" not in error

    def test_seed_scoped_rig_only_hits_that_seed(self, monkeypatch):
        self.rig(monkeypatch, "causal:eventual:2")
        doc = build_sweep_report(
            run_sweep(specs_for([self.CRASH], seeds=(1, 2))))
        status = {c["seed"]: c["status"] for c in doc["cells"]}
        assert status == {1: "ok", 2: "error"}

    def test_run_cell_raises_when_rigged(self, monkeypatch):
        self.rig(monkeypatch, "causal:eventual")
        with pytest.raises(RuntimeError, match="rigged crash"):
            run_cell(CellSpec("causal", "eventual", 1,
                              duration_ns=DURATION, warmup_ns=WARMUP))

    def test_sweep_summaries_raises_on_error_cell(self, monkeypatch):
        self.rig(monkeypatch, "causal:eventual")
        with pytest.raises(RuntimeError, match="failed"):
            sweep_summaries([self.CRASH], duration_ns=DURATION,
                            warmup_ns=WARMUP)


class TestSweepSummaries:
    def test_matches_direct_run(self):
        from repro.cluster.cluster import run_simulation
        from repro.workload.ycsb import WORKLOADS
        model = all_ddp_models()[0]
        by_model = sweep_summaries([model], duration_ns=DURATION,
                                   warmup_ns=WARMUP)
        summary, wall = by_model[(model.consistency.value,
                                  model.persistency.value)]
        direct = run_simulation(model, WORKLOADS["A"],
                                duration_ns=DURATION, warmup_ns=WARMUP)
        assert summary == direct
        assert wall > 0


class TestProgress:
    def ok_result(self, spec):
        return CellResult(spec=spec, status="ok",
                          timing={"wall_seconds": 0.5,
                                  "events_per_wall_second": 120_000.0,
                                  "events_processed": 60_000})

    def test_non_tty_is_line_oriented(self):
        stream = io.StringIO()  # isatty() -> False
        progress = SweepProgress(total=2, workers=2, stream=stream)
        spec = CellSpec("causal", "eventual", 1)
        progress.cell_done(self.ok_result(spec))
        progress.cell_done(CellResult(spec=spec, status="error",
                                      error="boom"))
        progress.finish()
        text = stream.getvalue()
        assert "\r" not in text and "\x1b" not in text
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]") and "ok" in lines[0]
        assert "ERROR" in lines[1]
        assert "eta" in lines[0]

    def test_tty_rewrites_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        progress = SweepProgress(total=1, workers=1, stream=stream)
        progress.cell_done(self.ok_result(CellSpec("causal", "eventual", 1)))
        progress.finish()
        text = stream.getvalue()
        assert text.startswith("\r\x1b[2K")
        assert text.endswith("\n")


class TestSchemaTag:
    def test_report_carries_current_tag(self):
        doc = build_sweep_report(run_sweep(specs_for(all_ddp_models()[:1])))
        assert doc["schema"] == SWEEP_REPORT_SCHEMA
