"""Tests for cross-run regression diffing (`repro diff` / the CI gate)."""

import json

import pytest

from repro.obs import (DiffError, diff_documents, diff_json, diff_paths,
                       format_markdown, load_artifact)
from repro.obs.diff import DIFF_SCHEMA


def _run_report(p99=1_000.0, throughput=1e8, config_hash="cafe",
                schema="repro.run_report/3", **extra):
    summary = {"throughput_ops_per_s": throughput, "p99_write_ns": p99,
               "mean_write_ns": 800.0, "persists": 5_000}
    summary.update(extra)
    return {"schema": schema, "meta": {"config_hash": config_hash},
            "summary": summary, "windows": []}


def _bench(config_hash="beef", **labels):
    return {"schema": "repro.bench/1", "bench": "fig6",
            "config_hash": config_hash,
            "metrics": labels or {
                "<Causal, Synchronous>": {"throughput_ops_per_s": 1e8},
            }}


class TestVerdicts:
    def test_identical_reports_no_regression(self):
        report = diff_documents(_run_report(), _run_report())
        assert report.verdict == "no-regression"
        assert report.regressions == []
        assert all(e.verdict in ("ok", "info") for e in report.entries)

    def test_p99_inflation_is_a_regression_naming_the_metric(self):
        report = diff_documents(_run_report(),
                                _run_report(p99=1_200.0))  # +20%
        assert report.verdict == "regression"
        names = [(e.label, e.metric) for e in report.regressions]
        assert ("summary", "p99_write_ns") in names

    def test_throughput_drop_is_a_regression(self):
        report = diff_documents(_run_report(), _run_report(throughput=0.8e8))
        assert any(e.metric == "throughput_ops_per_s"
                   for e in report.regressions)

    def test_latency_drop_is_an_improvement(self):
        report = diff_documents(_run_report(), _run_report(p99=800.0))
        assert report.verdict == "no-regression"
        assert any(e.metric == "p99_write_ns" for e in report.improvements)

    def test_noise_threshold_swallows_small_deltas(self):
        report = diff_documents(_run_report(), _run_report(p99=1_040.0))
        assert report.verdict == "no-regression"
        tight = diff_documents(_run_report(), _run_report(p99=1_040.0),
                               threshold=0.01)
        assert tight.verdict == "regression"

    def test_info_metrics_never_regress(self):
        report = diff_documents(_run_report(persists=5_000),
                                _run_report(persists=50_000))
        (entry,) = [e for e in report.entries if e.metric == "persists"]
        assert entry.verdict == "info"
        assert report.verdict == "no-regression"

    def test_nan_values_are_na(self):
        report = diff_documents(_run_report(p99=float("nan")), _run_report())
        (entry,) = [e for e in report.entries if e.metric == "p99_write_ns"]
        assert entry.verdict == "n/a"
        assert entry.delta_frac is None

    def test_absent_metric_is_skipped_not_compared(self):
        base = _run_report()
        del base["summary"]["p99_write_ns"]
        report = diff_documents(base, _run_report())
        assert not any(e.metric == "p99_write_ns" for e in report.entries)


class TestOneSidedKeys:
    """Metrics present in only one artifact are surfaced, never judged."""

    def test_metric_only_in_candidate_listed(self):
        base = _run_report()
        del base["summary"]["p99_write_ns"]
        report = diff_documents(base, _run_report())
        assert report.only_in_candidate == ["summary/p99_write_ns"]
        assert report.only_in_baseline == []
        assert report.verdict == "no-regression"

    def test_metric_only_in_baseline_listed(self):
        cand = _run_report()
        del cand["summary"]["throughput_ops_per_s"]
        report = diff_documents(_run_report(), cand)
        assert report.only_in_baseline == ["summary/throughput_ops_per_s"]

    def test_one_sided_bench_row_listed_whole(self):
        base = _bench(**{
            "<Causal, Synchronous>": {"throughput_ops_per_s": 1e8},
            "<Linearizable, Strict>": {"throughput_ops_per_s": 5e7},
        })
        cand = _bench(**{
            "<Causal, Synchronous>": {"throughput_ops_per_s": 1e8},
        })
        report = diff_documents(base, cand)
        assert report.only_in_baseline == ["<Linearizable, Strict>"]
        assert report.verdict == "no-regression"

    def test_one_sided_keys_rendered_and_serialized(self):
        base = _run_report()
        del base["summary"]["p99_write_ns"]
        cand = _run_report()
        del cand["summary"]["persists"]
        report = diff_documents(base, cand)
        text = format_markdown(report)
        assert "Only in baseline (not compared):" in text
        assert "summary/persists" in text
        assert "Only in candidate (not compared):" in text
        assert "summary/p99_write_ns" in text
        doc = diff_json(report)
        assert doc["only_in_baseline"] == ["summary/persists"]
        assert doc["only_in_candidate"] == ["summary/p99_write_ns"]

    def test_no_one_sided_sections_when_symmetric(self):
        report = diff_documents(_run_report(), _run_report())
        assert report.only_in_baseline == []
        assert report.only_in_candidate == []
        assert "Only in" not in format_markdown(report)


class TestCompatibility:
    def test_config_hash_mismatch_refused(self):
        with pytest.raises(DiffError, match="apples-to-oranges"):
            diff_documents(_run_report(config_hash="aaaa"),
                           _run_report(config_hash="bbbb"))

    def test_force_overrides_the_mismatch(self):
        report = diff_documents(_run_report(config_hash="aaaa"),
                                _run_report(config_hash="bbbb"), force=True)
        assert report.forced
        assert report.config_hash == ("aaaa", "bbbb")

    def test_unhashed_artifacts_still_compare(self):
        old = _run_report(schema="repro.run_report/1")
        del old["meta"]["config_hash"]
        report = diff_documents(old, _run_report())
        assert report.config_hash[0] is None
        assert report.entries

    def test_family_mismatch_refused(self):
        with pytest.raises(DiffError, match="bench"):
            diff_documents(_run_report(), _bench())

    def test_no_shared_rows_refused(self):
        base = _bench(**{"A": {"throughput_ops_per_s": 1e8}})
        cand = _bench(**{"B": {"throughput_ops_per_s": 1e8}})
        with pytest.raises(DiffError, match="no result rows"):
            diff_documents(base, cand)


class TestBenchArtifacts:
    def test_per_label_rows(self):
        base = _bench(**{
            "<Causal, Synchronous>": {"throughput_ops_per_s": 1e8},
            "<Linearizable, Strict>": {"throughput_ops_per_s": 5e7},
        })
        cand = _bench(**{
            "<Causal, Synchronous>": {"throughput_ops_per_s": 1e8},
            "<Linearizable, Strict>": {"throughput_ops_per_s": 3e7},
        })
        report = diff_documents(base, cand)
        assert report.schema_family == "bench"
        assert [(e.label, e.verdict) for e in report.regressions] == \
            [("<Linearizable, Strict>", "regression")]


class TestWallClockProfileRows:
    """Profiled run reports diff their wall-clock metrics as
    direction-annotated *informational* rows: the reader sees whether
    the kernel got faster or slower, the verdict never does."""

    def _profiled(self, events_per_wall_second=80_000.0,
                  wall_seconds=2.0, **extra):
        doc = _run_report(schema="repro.run_report/6")
        doc["profile"] = {
            "events_processed": 250_000,
            "events_per_wall_second": events_per_wall_second,
            "wall_seconds": wall_seconds,
            "loop_wall_seconds": wall_seconds * 0.9,
            "attribution": {"by_event_kind": {"timeout": {"count": 1}}},
            "scheduling": {"messages_handled": 9},
        }
        doc["profile"].update(extra)
        return doc

    def test_profile_row_compared_for_run_reports(self):
        report = diff_documents(self._profiled(), self._profiled())
        labels = {e.label for e in report.entries}
        assert "profile" in labels
        # Nested attribution/scheduling dicts are not flattened.
        metrics = {e.metric for e in report.entries if e.label == "profile"}
        assert metrics == {"events_processed", "events_per_wall_second",
                           "wall_seconds", "loop_wall_seconds"}

    def test_slower_kernel_is_info_worse_never_a_regression(self):
        report = diff_documents(
            self._profiled(events_per_wall_second=100_000.0),
            self._profiled(events_per_wall_second=50_000.0))  # half speed
        (entry,) = [e for e in report.entries
                    if e.metric == "events_per_wall_second"]
        assert entry.verdict == "info-worse"
        assert report.verdict == "no-regression"
        assert report.regressions == []
        assert entry in report.wall_clock_notes

    def test_faster_kernel_is_info_better_not_an_improvement(self):
        report = diff_documents(self._profiled(wall_seconds=2.0),
                                self._profiled(wall_seconds=1.0))
        walls = [e for e in report.entries
                 if e.metric in ("wall_seconds", "loop_wall_seconds")]
        assert {e.verdict for e in walls} == {"info-better"}
        assert report.improvements == []

    def test_wall_clock_noise_is_plain_info(self):
        report = diff_documents(self._profiled(wall_seconds=2.0),
                                self._profiled(wall_seconds=2.02))  # +1%
        (entry,) = [e for e in report.entries
                    if e.metric == "wall_seconds"]
        assert entry.verdict == "info"
        assert entry not in report.wall_clock_notes

    def test_deterministic_profile_counters_stay_info(self):
        """events_processed is seed-determined, not wall-clock: it
        diffs like any other unlisted counter."""
        report = diff_documents(self._profiled(), self._profiled())
        (entry,) = [e for e in report.entries
                    if e.metric == "events_processed"]
        assert entry.direction == "info"
        assert entry.verdict == "info"

    def test_markdown_has_an_informational_section(self):
        report = diff_documents(
            self._profiled(events_per_wall_second=100_000.0),
            self._profiled(events_per_wall_second=150_000.0,
                           wall_seconds=3.0))
        text = format_markdown(report)
        assert "Wall-clock (informational, excluded from verdict):" in text
        assert "faster" in text and "slower" in text
        assert "Regressions:" not in text

    def test_json_lists_wall_clock_notes_separately(self):
        report = diff_documents(
            self._profiled(events_per_wall_second=100_000.0),
            self._profiled(events_per_wall_second=50_000.0))
        doc = diff_json(report)
        assert doc["verdict"] == "no-regression"
        assert doc["regressions"] == []
        assert "profile/events_per_wall_second" in doc["wall_clock_notes"]
        json.dumps(doc, allow_nan=False)

    def test_kernel_bench_rows_get_the_same_treatment(self):
        """BENCH_kernel.json points carry the same wall-clock metric
        names; per-label bench rows inherit the informational verdicts."""
        base = _bench(**{"causal-eventual-3s":
                         {"events_per_wall_second": 80_000.0,
                          "throughput_ops_per_s": 1e8}})
        cand = _bench(**{"causal-eventual-3s":
                         {"events_per_wall_second": 40_000.0,
                          "throughput_ops_per_s": 1e8}})
        report = diff_documents(base, cand)
        (entry,) = report.wall_clock_notes
        assert entry.label == "causal-eventual-3s"
        assert entry.verdict == "info-worse"
        assert report.verdict == "no-regression"

    def test_unprofiled_reports_have_no_profile_row(self):
        report = diff_documents(_run_report(), _run_report())
        assert all(e.label == "summary" for e in report.entries)
        assert report.wall_clock_notes == []


class TestAuditRows:
    """Run reports carrying an `audit` section diff its totals: new
    contract violations over a clean baseline must be regressions even
    though the baseline count is zero."""

    def _audited(self, violations=0, cells_failed=0, target_failed=0,
                 wall=0.05):
        doc = _run_report(schema="repro.run_report/6")
        doc["audit"] = {
            "schema": "repro.audit_report/1",
            "usable": True,
            "totals": {"cells": 25, "cells_failed": cells_failed,
                       "violations_total": violations,
                       "target_failed_checks": target_failed,
                       "checker_wall_seconds": wall},
        }
        return doc

    def test_audit_totals_compared(self):
        report = diff_documents(self._audited(), self._audited())
        metrics = {e.metric for e in report.entries if e.label == "audit"}
        assert {"cells_failed", "violations_total",
                "target_failed_checks"} <= metrics
        assert report.verdict == "no-regression"

    def test_new_violations_over_clean_baseline_regress(self):
        report = diff_documents(self._audited(violations=0),
                                self._audited(violations=4))
        names = [(e.label, e.metric) for e in report.regressions]
        assert ("audit", "violations_total") in names
        assert report.verdict == "regression"

    def test_target_cell_break_is_a_regression(self):
        report = diff_documents(
            self._audited(), self._audited(target_failed=1, cells_failed=1))
        names = [(e.label, e.metric) for e in report.regressions]
        assert ("audit", "target_failed_checks") in names

    def test_fixed_violations_are_an_improvement(self):
        report = diff_documents(self._audited(violations=4),
                                self._audited(violations=0))
        assert any(e.metric == "violations_total"
                   for e in report.improvements)
        assert report.verdict == "no-regression"

    def test_checker_wall_time_stays_informational(self):
        report = diff_documents(self._audited(wall=0.05),
                                self._audited(wall=5.0))
        (entry,) = [e for e in report.entries
                    if e.metric == "checker_wall_seconds"]
        assert entry.verdict == "info-worse"
        assert report.verdict == "no-regression"

    def test_unaudited_reports_have_no_audit_rows(self):
        report = diff_documents(_run_report(), _run_report())
        assert not any(e.label == "audit" for e in report.entries)


class TestLoading:
    def test_roundtrip_via_paths(self, tmp_path):
        base, cand = tmp_path / "a.json", tmp_path / "b.json"
        base.write_text(json.dumps(_run_report()))
        cand.write_text(json.dumps(_run_report(p99=1_500.0)))
        report = diff_paths(str(base), str(cand))
        assert report.verdict == "regression"
        assert report.baseline == str(base)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DiffError, match="cannot read"):
            load_artifact(str(tmp_path / "nope.json"))

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DiffError, match="not valid JSON"):
            load_artifact(str(path))

    def test_missing_schema(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(DiffError, match="no schema field"):
            load_artifact(str(path))

    def test_unsupported_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": "repro.run_report/99"}))
        with pytest.raises(DiffError, match="unknown repro.run_report "
                                            "version"):
            load_artifact(str(path))

    def test_old_run_report_schemas_accepted(self, tmp_path):
        for schema in ("repro.run_report/1", "repro.run_report/2"):
            path = tmp_path / "old.json"
            path.write_text(json.dumps(_run_report(schema=schema)))
            assert load_artifact(str(path))["schema"] == schema


class TestRendering:
    def test_markdown_leads_with_the_verdict(self):
        report = diff_documents(_run_report(), _run_report(p99=1_300.0))
        text = format_markdown(report)
        assert text.startswith("# repro diff — regression")
        assert "p99_write_ns" in text
        assert "+30.0%" in text

    def test_markdown_show_ok_false_hides_quiet_rows(self):
        report = diff_documents(_run_report(), _run_report(p99=1_300.0))
        text = format_markdown(report, show_ok=False)
        assert "p99_write_ns" in text
        assert "persists" not in text

    def test_json_document(self):
        report = diff_documents(_run_report(), _run_report(p99=1_300.0),
                                threshold=0.1)
        doc = diff_json(report)
        assert doc["schema"] == DIFF_SCHEMA
        assert doc["verdict"] == "regression"
        assert doc["regressions"] == ["summary/p99_write_ns"]
        assert doc["threshold"] == 0.1
        json.dumps(doc, allow_nan=False)  # strict JSON

    def test_json_verdict_is_deterministic(self):
        a = diff_json(diff_documents(_run_report(), _run_report()))
        b = diff_json(diff_documents(_run_report(), _run_report()))
        assert a == b


def _sweep(config_hash="feed", cells=None):
    if cells is None:
        cells = [_sweep_cell("causal", "eventual", 1)]
    return {"schema": "repro.sweep_report/1",
            "meta": {"config_hash": config_hash},
            "cells": cells,
            "totals": {"cells": len(cells),
                       "ok": sum(1 for c in cells
                                 if c["status"] == "ok"),
                       "errors": sum(1 for c in cells
                                     if c["status"] != "ok")}}


def _sweep_cell(consistency, persistency, seed, status="ok",
                throughput=1e8, p99=1_000.0):
    cell = {"consistency": consistency, "persistency": persistency,
            "seed": seed, "model": f"<{consistency}, {persistency}>",
            "status": status}
    if status == "ok":
        cell["summary"] = {"throughput_ops_per_s": throughput,
                           "p99_write_ns": p99}
    else:
        cell["error"] = "RuntimeError: boom"
    return cell


class TestSweepReports:
    def test_identical_sweeps_no_regression(self):
        report = diff_documents(_sweep(), _sweep())
        assert report.verdict == "no-regression"

    def test_per_cell_metric_regression(self):
        base = _sweep(cells=[_sweep_cell("causal", "eventual", 1),
                             _sweep_cell("eventual", "eventual", 1)])
        cand = _sweep(cells=[_sweep_cell("causal", "eventual", 1),
                             _sweep_cell("eventual", "eventual", 1,
                                         throughput=5e7)])
        report = diff_documents(base, cand)
        assert report.verdict == "regression"
        labels = {e.label for e in report.regressions}
        assert labels == {"eventual/eventual@seed1"}

    def test_candidate_only_crash_is_a_regression(self):
        base = _sweep()
        cand = _sweep(cells=[_sweep_cell("causal", "eventual", 1,
                                         status="error")])
        report = diff_documents(base, cand)
        assert report.verdict == "regression"
        assert any(e.metric == "cell_error" for e in report.regressions)

    def test_crash_fixed_in_candidate_is_improvement(self):
        base = _sweep(cells=[_sweep_cell("causal", "eventual", 1,
                                         status="error")])
        report = diff_documents(base, _sweep())
        assert report.verdict == "no-regression"
        assert any(e.metric == "cell_error"
                   for e in report.improvements)

    def test_one_sided_cells_listed_never_veto(self):
        base = _sweep(cells=[_sweep_cell("causal", "eventual", 1),
                             _sweep_cell("causal", "eventual", 2)])
        cand = _sweep(cells=[_sweep_cell("causal", "eventual", 1),
                             _sweep_cell("eventual", "eventual", 1)])
        report = diff_documents(base, cand)
        assert report.verdict == "no-regression"
        assert "causal/eventual@seed2" in report.only_in_baseline
        assert "eventual/eventual@seed1" in report.only_in_candidate

    def test_config_hash_mismatch_rejected(self):
        with pytest.raises(DiffError, match="config mismatch"):
            diff_documents(_sweep("aaaa"), _sweep("bbbb"))

    def test_sweep_vs_run_report_rejected(self):
        with pytest.raises(DiffError, match="cannot diff"):
            diff_documents(_sweep(), _run_report())

    def test_exit_semantics_via_paths(self, tmp_path):
        base, cand = tmp_path / "a.json", tmp_path / "b.json"
        base.write_text(json.dumps(_sweep()))
        cand.write_text(json.dumps(_sweep(cells=[
            _sweep_cell("causal", "eventual", 1, status="error")])))
        report = diff_paths(str(base), str(cand))
        assert report.verdict == "regression"
        assert report.schema_family == "sweep_report"
