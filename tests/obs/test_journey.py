"""JourneyTracker unit tests: correlation, sampling, and caps.

These drive the tracker directly through its tracer interface with a
hand-built emission sequence, so every correlation rule (key+version,
op_id side-map, NVM span matching, causal buffering) is pinned without
running a simulation.
"""

import pytest

from repro.obs import JourneyTracker, UpdateJourney

V = (1, 0)


def issue(tracker, key=7, version=V, node=0, time=100.0, **details):
    tracker.emit(time, "write_issue", node=node, key=key, version=version,
                 start=details.pop("start", time), **details)


def full_journey(tracker, key=7, version=V):
    """Issue at n0, replicate to n1/n2, apply + persist everywhere."""
    issue(tracker, key=key, version=version, time=100.0, start=90.0,
          stall_ns=4.0)
    for dst, send in ((1, 110.0), (2, 112.0)):
        tracker.emit(send, "msg_send", node=0, msg="INV", dst=dst,
                     key=key, version=version, op_id=55)
    for node, recv in ((1, 150.0), (2, 160.0)):
        tracker.emit(recv, "msg_recv", node=node, msg="INV",
                     key=key, version=version, op_id=55)
    for node, apply_at in ((0, 105.0), (1, 155.0), (2, 170.0)):
        tracker.emit(apply_at, "apply", node=node, key=key, version=version)
    for node, t in ((0, 106.0), (1, 156.0), (2, 171.0)):
        tracker.emit(t, "persist_issue", node=node, key=key, version=version,
                     trigger="eager")
        tracker.span(t + 1.0, t + 20.0, "nvm_persist", node=node,
                     address=key, service_ns=15.0)
        tracker.emit(t + 20.0, "persist", node=node, key=key, version=version)


class TestCorrelation:
    def test_full_journey_assembled(self):
        tracker = JourneyTracker(3)
        full_journey(tracker)
        journey = tracker.get(7, V)
        assert journey is not None
        assert journey.client_issue_ns == 90.0
        assert journey.issue_ns == 100.0
        assert journey.stall_ns == 4.0
        assert journey.sends == {1: 110.0, 2: 112.0}
        assert journey.recvs == {1: 150.0, 2: 160.0}
        assert journey.applies == {0: 105.0, 1: 155.0, 2: 170.0}
        assert journey.persist_triggers == {0: "eager", 1: "eager",
                                            2: "eager"}
        assert journey.device_ns == {0: 15.0, 1: 15.0, 2: 15.0}
        assert journey.vp_ns(3) == 170.0 - 90.0
        assert journey.dp_ns(3) == 191.0 - 90.0
        assert journey.vp_node == 2 and journey.dp_node == 2

    def test_op_id_side_map_correlates_versionless_messages(self):
        tracker = JourneyTracker(3)
        issue(tracker)
        tracker.emit(110.0, "msg_send", node=0, msg="INV", dst=1,
                     key=7, version=V, op_id=99)
        # ACKs carry only the op_id.
        tracker.emit(140.0, "msg_recv", node=0, msg="ACK", src=1, op_id=99)
        tracker.emit(145.0, "msg_recv", node=0, msg="ACK_P", src=1, op_id=99)
        journey = tracker.get(7, V)
        assert journey.acks == {1: 140.0}
        assert journey.ack_ps == {1: 145.0}

    def test_unknown_update_ignored(self):
        tracker = JourneyTracker(3)
        tracker.emit(50.0, "apply", node=1, key=3, version=(9, 9))
        tracker.emit(60.0, "msg_recv", node=1, msg="INV", op_id=123)
        assert len(tracker) == 0

    def test_lazy_and_chain_sends_marked(self):
        tracker = JourneyTracker(3)
        issue(tracker)
        tracker.emit(110.0, "msg_send", node=0, msg="UPD", dst=1,
                     key=7, version=V, lazy=True)
        tracker.emit(120.0, "msg_send", node=0, msg="UPD", dst=2,
                     key=7, version=V, chain=True)
        assert tracker.get(7, V).lazy_dsts == {1, 2}

    def test_nvm_span_only_matches_completing_write(self):
        tracker = JourneyTracker(1)
        issue(tracker)
        # A span for the same address that ended earlier must not match.
        tracker.span(101.0, 120.0, "nvm_persist", node=0, address=7,
                     service_ns=15.0)
        tracker.emit(130.0, "persist", node=0, key=7, version=V)
        assert tracker.get(7, V).device_ns == {}

    def test_causal_buffer_wait_recorded(self):
        tracker = JourneyTracker(3)
        issue(tracker)
        tracker.emit(150.0, "causal_buffered", node=2, key=7, version=V)
        tracker.emit(180.0, "causal_released", node=2, key=7, version=V)
        assert tracker.get(7, V).buffer_wait_ns == {2: 30.0}


class TestSamplingAndCaps:
    def test_sample_every_skips_writes(self):
        tracker = JourneyTracker(3, sample_every=3)
        for i in range(9):
            issue(tracker, key=i, version=(i, 0))
        assert len(tracker) == 3
        assert {j.key for j in tracker.journeys} == {0, 3, 6}

    def test_max_journeys_counts_dropped(self):
        tracker = JourneyTracker(3, max_journeys=2)
        for i in range(5):
            issue(tracker, key=i, version=(i, 0))
        assert len(tracker) == 2
        assert tracker.dropped == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            JourneyTracker(3, sample_every=0)
        with pytest.raises(ValueError):
            JourneyTracker(3, max_journeys=0)


class TestDerived:
    def test_incomplete_points_are_none(self):
        journey = UpdateJourney(key=1, version=V, coordinator=0,
                                client_issue_ns=0.0, issue_ns=1.0)
        assert journey.vp_ns(3) is None and journey.dp_ns(3) is None
        assert journey.vp_node is None and journey.dp_node is None

    def test_point_node_tiebreak_is_highest_id(self):
        journey = UpdateJourney(key=1, version=V, coordinator=0,
                                client_issue_ns=0.0, issue_ns=1.0)
        journey.applies = {0: 5.0, 1: 9.0, 2: 9.0}
        assert journey.vp_node == 2
