"""The performance observatory surface: sampler, exports, hotspots."""

import json
import threading
import time

import pytest

from repro.obs import (FrameSampler, KernelProfile, classify_phase,
                       format_hotspots, hotspot_rows)
from repro.sim.engine import Simulator


class TestPhaseClassification:
    def test_deepest_repro_frame_wins(self):
        stack = ["runpy:_run_module_as_main", "repro.sim.engine:run",
                 "repro.core.engine:_on_inv"]
        assert classify_phase(stack) == "protocol"

    def test_kernel_when_leaf_is_the_event_loop(self):
        assert classify_phase(["__main__:main",
                               "repro.sim.engine:step"]) == "kernel"

    @pytest.mark.parametrize("module,phase", [
        ("repro.store.nvm", "store"),
        ("repro.workload.ycsb", "workload"),
        ("repro.obs.monitor", "observability"),
        ("repro.analysis.metrics", "observability"),
        ("repro.net.network", "protocol"),
        ("repro.memory.hierarchy", "protocol"),
    ])
    def test_prefix_map(self, module, phase):
        assert classify_phase([f"{module}:fn"]) == phase

    def test_non_repro_stack_is_other(self):
        assert classify_phase(["json:dumps", "io:write"]) == "other"
        assert classify_phase([]) == "other"

    def test_repro_prefix_requires_module_boundary(self):
        """A module merely *named* like ours (reproxy) is not protocol."""
        assert classify_phase(["reproxy.server:run"]) == "other"


class TestFrameSampler:
    def test_sample_once_captures_this_stack(self):
        sampler = FrameSampler(interval_s=0.001)
        assert sampler.sample_once(weight_s=0.25)
        phase, stack, weight = sampler.samples[0]
        assert weight == 0.25
        assert any("test_perf" in frame for frame in stack)
        # The sampler trims its own frames: the leaf is this test.
        assert not stack[-1].startswith("repro.obs.perf:")

    def test_polling_thread_samples_the_target(self):
        sampler = FrameSampler(interval_s=0.001)
        sampler.start()
        deadline = time.monotonic() + 2.0
        while not sampler.samples and time.monotonic() < deadline:
            sum(range(2000))  # keep the target thread busy
        sampler.stop()
        assert sampler.samples, "poller never captured a stack"
        assert sampler.target_thread_id == threading.get_ident()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            FrameSampler(interval_s=0.0)

    def test_start_twice_is_an_error(self):
        sampler = FrameSampler(interval_s=0.05)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()
        sampler.stop()  # idempotent

    def test_folded_output_format(self, tmp_path):
        sampler = FrameSampler(interval_s=0.001)
        sampler.samples = [
            ("kernel", ("a:f", "b:g"), 0.010),
            ("kernel", ("a:f", "b:g"), 0.005),
            ("protocol", ("a:f", "c:h"), 0.002),
        ]
        path = tmp_path / "out.folded"
        assert sampler.write_folded(str(path)) == 2
        lines = path.read_text().splitlines()
        assert lines == ["kernel;a:f;b:g 15", "protocol;a:f;c:h 2"]

    def test_folded_weights_never_round_to_zero(self, tmp_path):
        sampler = FrameSampler(interval_s=0.001)
        sampler.samples = [("kernel", ("a:f",), 0.0001)]  # 0.1 ms
        path = tmp_path / "tiny.folded"
        sampler.write_folded(str(path))
        assert path.read_text() == "kernel;a:f 1\n"

    def test_speedscope_document_schema(self):
        """The export satisfies the speedscope file-format contract the
        app validates on load: schema URL, shared frame table, sampled
        profile with aligned samples/weights and consistent indices."""
        sampler = FrameSampler(interval_s=0.001)
        sampler.samples = [
            ("kernel", ("a:f", "b:g"), 0.010),
            ("workload", ("a:f",), 0.003),
        ]
        doc = sampler.speedscope_document(name="unit")
        assert doc["$schema"] == \
            "https://www.speedscope.app/file-format-schema.json"
        frames = doc["shared"]["frames"]
        assert all(isinstance(f["name"], str) for f in frames)
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        assert profile["endValue"] == pytest.approx(0.013)
        for sample in profile["samples"]:
            assert all(0 <= index < len(frames) for index in sample)
        # Phase is the synthetic root frame of each sample.
        assert frames[profile["samples"][0][0]]["name"] == "[kernel]"
        assert frames[profile["samples"][1][0]]["name"] == "[workload]"

    def test_write_speedscope_round_trips_as_json(self, tmp_path):
        sampler = FrameSampler(interval_s=0.001)
        sampler.sample_once()
        path = tmp_path / "p.speedscope.json"
        sampler.write_speedscope(str(path))
        doc = json.loads(path.read_text())
        assert doc["profiles"][0]["type"] == "sampled"

    def test_phase_totals(self):
        sampler = FrameSampler(interval_s=0.001)
        sampler.samples = [("kernel", ("a:f",), 0.2),
                           ("kernel", ("b:g",), 0.3),
                           ("store", ("c:h",), 0.1)]
        assert sampler.phase_totals() == {"kernel": pytest.approx(0.5),
                                          "store": pytest.approx(0.1)}


def _profiled_tiny_run():
    sim = Simulator()
    profile = KernelProfile()
    profile.attach(sim)

    def worker():
        for _ in range(5):
            yield sim.timeout(10.0)

    for _ in range(3):
        sim.process(worker())
    sim.run()
    profile.stop(sim.now)
    return profile


class TestHotspots:
    def test_rows_ranked_by_cumulative_wall(self):
        profile = _profiled_tiny_run()
        rows = hotspot_rows(profile)
        assert rows
        walls = [row["wall_seconds"] for row in rows]
        assert walls == sorted(walls, reverse=True)
        by_name = {(r["section"], r["name"]): r for r in rows}
        assert by_name[("event_kind", "timeout")]["count"] == 15
        for row in rows:
            assert row["ns_per_event"] >= 0.0
            assert 0.0 <= row["share"] <= 1.0

    def test_event_kind_shares_sum_to_one(self):
        """The acceptance criterion, at unit scale: bucket wall-times
        sum to within 5% of the kernel loop wall."""
        profile = _profiled_tiny_run()
        share = sum(row["share"] for row in hotspot_rows(profile)
                    if row["section"] == "event_kind")
        assert share == pytest.approx(1.0, abs=0.05)

    def test_format_hotspots_table(self):
        profile = _profiled_tiny_run()
        text = format_hotspots(profile)
        assert "kernel loop:" in text
        assert "by event kind" in text
        assert "timeout" in text
        assert "scheduling:" in text

    def test_top_limits_rows(self):
        profile = _profiled_tiny_run()
        limited = format_hotspots(profile, top=1)
        # Only the heaviest event-kind row survives.
        assert "timeout" in limited
        assert len(limited.splitlines()) < \
            len(format_hotspots(profile).splitlines())
